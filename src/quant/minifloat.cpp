#include "quant/minifloat.h"

#include <cmath>

#include "base/check.h"

namespace hack {
namespace {

struct Layout {
  int exp_bits;
  int man_bits;
  int bias;
};

Layout layout_of(MiniFloatFormat format) {
  switch (format) {
    case MiniFloatFormat::kFp8E4M3:
      return {4, 3, 7};
    case MiniFloatFormat::kFp6E3M2:
      return {3, 2, 3};
    case MiniFloatFormat::kFp4E2M1:
      return {2, 1, 1};
  }
  HACK_CHECK(false, "unknown minifloat format");
  return {};
}

// Largest finite magnitude of the format (all-ones exponent is kept finite,
// saturating semantics as in E4M3).
float max_finite(const Layout& l) {
  const int max_exp = (1 << l.exp_bits) - 1 - l.bias;
  const float max_man =
      2.0f - std::ldexp(1.0f, -l.man_bits);  // 1.111... in binary
  return std::ldexp(max_man, max_exp);
}

}  // namespace

int minifloat_bits(MiniFloatFormat format) {
  const Layout l = layout_of(format);
  return 1 + l.exp_bits + l.man_bits;
}

std::string minifloat_name(MiniFloatFormat format) {
  switch (format) {
    case MiniFloatFormat::kFp8E4M3:
      return "FP8";
    case MiniFloatFormat::kFp6E3M2:
      return "FP6";
    case MiniFloatFormat::kFp4E2M1:
      return "FP4";
  }
  return "?";
}

std::uint8_t minifloat_encode(float value, MiniFloatFormat format) {
  const Layout l = layout_of(format);
  const std::uint8_t sign = value < 0.0f || (value == 0.0f && std::signbit(value))
                                ? 1
                                : 0;
  float mag = std::fabs(value);
  if (std::isnan(mag)) {
    mag = 0.0f;  // quantizing NaN makes no sense for KV data; treat as zero
  }
  const float limit = max_finite(l);
  if (mag > limit) {
    mag = limit;  // saturate
  }

  const int total = 1 + l.exp_bits + l.man_bits;
  const std::uint8_t sign_shifted =
      static_cast<std::uint8_t>(sign << (total - 1));
  if (mag == 0.0f) {
    return sign_shifted;
  }

  int exp = 0;
  float frac = std::frexp(mag, &exp);  // mag = frac * 2^exp, frac in [0.5, 1)
  // Normal form m.1xxx * 2^(exp-1): exponent field e = exp - 1 + bias.
  int e_field = exp - 1 + l.bias;
  std::uint32_t man = 0;
  if (e_field <= 0) {
    // Subnormal: value = 0.man * 2^(1 - bias - man_bits) steps.
    const float step = std::ldexp(1.0f, 1 - l.bias - l.man_bits);
    long q = std::lround(mag / step);
    if (q == 0) return sign_shifted;
    if (q >= (1L << l.man_bits)) {
      // Rounded up into the smallest normal.
      e_field = 1;
      man = 0;
    } else {
      e_field = 0;
      man = static_cast<std::uint32_t>(q);
    }
  } else {
    // Round mantissa (frac in [0.5,1) -> 1.f in [1,2)).
    const float scaled = (frac * 2.0f - 1.0f) * static_cast<float>(1 << l.man_bits);
    long q = std::lround(scaled);
    if (q >= (1L << l.man_bits)) {
      q = 0;
      ++e_field;
    }
    man = static_cast<std::uint32_t>(q);
    const int e_max = (1 << l.exp_bits) - 1;
    if (e_field > e_max) {
      // Saturate to max finite.
      e_field = e_max;
      man = (1u << l.man_bits) - 1;
    }
  }
  return static_cast<std::uint8_t>(
      sign_shifted | (static_cast<std::uint32_t>(e_field) << l.man_bits) | man);
}

float minifloat_decode(std::uint8_t bits, MiniFloatFormat format) {
  const Layout l = layout_of(format);
  const int total = 1 + l.exp_bits + l.man_bits;
  const int sign = (bits >> (total - 1)) & 1;
  const int e_field =
      (bits >> l.man_bits) & ((1 << l.exp_bits) - 1);
  const int man = bits & ((1 << l.man_bits) - 1);

  float mag = 0.0f;
  if (e_field == 0) {
    mag = std::ldexp(static_cast<float>(man), 1 - l.bias - l.man_bits);
  } else {
    const float significand =
        1.0f + std::ldexp(static_cast<float>(man), -l.man_bits);
    mag = std::ldexp(significand, e_field - l.bias);
  }
  return sign ? -mag : mag;
}

float minifloat_round(float value, MiniFloatFormat format) {
  return minifloat_decode(minifloat_encode(value, format), format);
}

Matrix minifloat_round_matrix(const Matrix& m, MiniFloatFormat format) {
  Matrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out.flat()[i] = minifloat_round(m.flat()[i], format);
  }
  return out;
}

double minifloat_compression_vs_fp16(MiniFloatFormat format) {
  return 1.0 - static_cast<double>(minifloat_bits(format)) / 16.0;
}

}  // namespace hack
