// Multi-replica disaggregated fleet: N prefill workers × M decode workers.
//
// PR 6's DisaggEngine recovers from faults on a single prefill→decode pair —
// a worker crash there means retrying the same worker or degrading to a
// local decode. At fleet scale the right answer is *routing*: a dead decode
// worker is a reason to send the already-serialized KV blob to a replica
// (rehydrate-elsewhere, never re-prefill), a dead prefill worker a reason to
// re-dispatch the prompt to a sibling, and a full decode pool a reason to
// shed load — FlowKV (PAPERS.md) makes the case for treating KV-transfer
// health as a first-class scheduling input. This module is that engine:
//
//   Health      every worker carries a state machine
//                 healthy → suspect → down → recovering → healthy
//               driven by crash injection (fatal: straight to down),
//               consecutive transfer failures on its links (drop-retransmit
//               rounds, CRC failures — suspect, then down), and FaultModel
//               link-down windows (a waited-out window marks the link's
//               worker suspect). Down workers leave the candidate set until
//               a cooldown elapses; recovering workers rejoin and earn
//               healthy back with successes. Every transition is stamped
//               with the engine-timeline instant for the report.
//   Dispatch    a pluggable function-pointer policy (the Archfx SchedulerFn
//               shape, running on real kv_wire blob sizes instead of the
//               cluster simulator's modeled costs) picks a worker from the
//               eligible snapshots — round-robin, least-outstanding-bytes,
//               or free-KV-blocks-aware — and is consulted *again* on every
//               failure, so failover is just dispatch with fresher health.
//   Failover    a decode crash mid-handoff re-routes the serialized blob to
//               a replica over that replica's own link (a reroute, counted;
//               the prompt is never recomputed — re_prefills_from_decode
//               stays zero by construction). A prefill crash re-dispatches
//               the prompt to a sibling prefill worker. Both burn the same
//               bounded per-request retry budget as the single-pair engine.
//   Resume      with a checkpoint cadence on (DisaggConfig::
//               checkpoint_every_tokens), a decode worker dying *mid-
//               generation* costs at most one checkpoint window: the
//               request's prefill worker doubles as the standby store
//               (base blob + latest CRC-verified wire v3 delta), and the
//               replica the next dispatch round picks resumes from base +
//               delta + replayed suffix instead of recomputing from the
//               blob — re_prefills_from_decode stays zero even for
//               mid-decode crashes.
//   Drain       link faults during the handoff can mark a worker suspect
//               after dispatch picked it healthy. With proactive_drain on,
//               such a worker decodes only to its first checkpoint cut;
//               the request then migrates live (resume from that cut) to a
//               healthy replica rather than gambling the whole decode on
//               failing hardware.
//   Shedding    fleet-wide admission control: a request no decode pool can
//               ever hold (or that exhausts its budget with every decode
//               worker down) is shed — decoded locally on its prefill
//               worker when RetryPolicy::fallback_local is on, rejected
//               otherwise — never deadlocked on a full fleet.
//
// Every prefill worker owns a NIC, every decode worker owns a NIC, and every
// (prefill, decode) link owns an independent seeded FaultModel
// (fault_config_for_link), so chaos on one link never shifts the fate stream
// of another and concurrent blobs contend on the shared NICs realistically.
//
// The bit-identity contract extends fleet-wide (docs/robustness.md): any
// schedule of crashes, link-down windows, drops, and corruptions that does
// not exhaust a request's budget yields token streams identical to the
// fault-free single-pair run — workers are replicas of one model + backend
// seed, and the blob rehydrates the same bytes wherever it lands.
// tests/test_fleet.cpp pins the contract; bench_serving_throughput
// --fleet=NxM (with --kill=worker:request schedules) measures it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serving/disagg.h"

namespace hack {

// "No worker" sentinel for routing fields (e.g. a shed request's decode
// worker) and policy results on an empty candidate set.
inline constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

enum class WorkerHealth {
  kHealthy,     // full candidate
  kSuspect,     // recent transfer trouble; deprioritized by the policies
  kDown,        // crashed or failed past threshold; not a candidate
  kRecovering,  // cooldown served; candidate again, on probation
};

const char* worker_health_name(WorkerHealth health);

// When failures move a worker along the state machine. Crashes are fatal
// (straight to down); transfer failures (a retransmit round on the worker's
// link, a receiver CRC rejection, a waited-out link-down window) accumulate.
struct HealthPolicy {
  std::size_t suspect_after = 1;  // consecutive non-fatal failures → suspect
  std::size_t down_after = 3;     // consecutive non-fatal failures → down
  double down_cooldown_s = 0.05;  // time spent down before recovering
  std::size_t probation_successes = 1;  // successes to earn healthy back
};

// One edge of a worker's health trajectory, stamped with the engine-timeline
// instant it happened.
struct HealthTransition {
  double time_s = 0.0;
  WorkerHealth from = WorkerHealth::kHealthy;
  WorkerHealth to = WorkerHealth::kHealthy;
};

// What a dispatch policy sees about one eligible worker at decision time.
struct WorkerSnapshot {
  std::size_t index = 0;  // worker index within its pool
  WorkerHealth health = WorkerHealth::kHealthy;
  double free_at_s = 0.0;            // compute busy horizon
  std::size_t outstanding_bytes = 0; // wire bytes routed here, still in service
  std::size_t active_requests = 0;   // requests in flight on this worker
  std::size_t served_requests = 0;
  std::size_t free_kv_blocks = SIZE_MAX;  // decode pool headroom (SIZE_MAX:
                                          // no admission control)
};

struct DispatchContext {
  std::size_t request_index = 0;  // arrival-order index
  std::size_t prompt_tokens = 0;
  std::size_t need_kv_blocks = 0;  // worst-case decode-pool need
  std::uint64_t rr_cursor = 0;     // engine-advanced per-pool rotation state
};

// Picks one of `candidates` (non-empty; down workers and pools that cannot
// admit the request are already filtered out) and returns its .index. The
// provided policies prefer the best available health tier (healthy, then
// recovering, then suspect) and break ties deterministically, so a routing
// decision is a pure function of (context, snapshots) — same seed + same
// kill schedule ⇒ same routes, pinned in tests/test_fleet.cpp.
using DispatchPolicyFn =
    std::size_t (*)(const DispatchContext& context,
                    std::span<const WorkerSnapshot> candidates);

// Rotates over the eligible list: cursor picks the starting position, the
// first best-tier worker from there wins.
std::size_t dispatch_round_robin(const DispatchContext& context,
                                 std::span<const WorkerSnapshot> candidates);
// Fewest outstanding wire bytes; ties → earlier free_at_s → lower index.
std::size_t dispatch_least_outstanding_bytes(
    const DispatchContext& context,
    std::span<const WorkerSnapshot> candidates);
// Most free KV blocks; ties → fewer outstanding bytes → lower index.
std::size_t dispatch_most_free_blocks(
    const DispatchContext& context,
    std::span<const WorkerSnapshot> candidates);

const char* dispatch_policy_name(DispatchPolicyFn policy);

struct FleetConfig {
  // Per-worker knobs: attention config, backend seed, NIC rates, transfer
  // chunking, retry policy, and the base fault config every link's model is
  // derived from (fault_config_for_link).
  DisaggConfig worker;
  std::size_t prefill_workers = 1;
  std::size_t decode_workers = 1;
  DispatchPolicyFn prefill_policy = &dispatch_round_robin;
  DispatchPolicyFn decode_policy = &dispatch_least_outstanding_bytes;
  HealthPolicy health;
  // Per-decode-worker pool sizes (blocks). Empty: every worker gets
  // worker.decode_kv_blocks. A heterogeneous fleet makes the
  // free-KV-blocks-aware policy meaningful.
  std::vector<std::size_t> decode_pool_blocks;
  // Proactive drain: a decode worker that is suspect when its decode starts
  // (the handoff's link faults demoted it after dispatch picked it) stops at
  // its first checkpoint cut, and the request migrates live — resume from
  // base + that cut — to a healthy replica with pool headroom. No effect
  // unless worker.checkpoint_every_tokens > 0 and such a replica exists.
  bool proactive_drain = true;
};

// Per-worker rollup for the report.
struct FleetWorkerStats {
  std::string name;  // "prefill0", "decode1", ...
  std::size_t served = 0;             // requests this worker completed
  std::size_t crashes = 0;
  std::size_t transfer_failures = 0;  // non-fatal health inputs
  double busy_s = 0.0;
  double utilization = 0.0;           // busy_s / fleet makespan
  WorkerHealth final_health = WorkerHealth::kHealthy;
  std::vector<HealthTransition> transitions;
  // Decode pools only (0 when admission control is off).
  std::size_t failed_allocations = 0;
  std::size_t min_free_watermark = 0;
  // Decode only: requests this worker gave up at a checkpoint cut because
  // the engine drained it proactively while suspect.
  std::size_t drains = 0;
};

// One request's route through the fleet, on top of the single-pair record
// (timings, tokens, and fault counters live in `d`).
struct FleetRecord {
  DisaggRecord d;
  std::size_t prefill_worker = kNoWorker;  // worker that produced the blob
  std::size_t decode_worker = kNoWorker;   // worker that decoded (kNoWorker:
                                           // shed/rejected)
  std::vector<std::size_t> prefill_route;  // every prefill worker tried
  std::vector<std::size_t> decode_route;   // every decode worker targeted
  std::size_t reroutes = 0;           // blob re-routed to a different replica
  std::size_t prefill_failovers = 0;  // prompt re-dispatched to a sibling
  std::size_t re_prefills = 0;        // prefill executions past the first
  std::size_t migrations = 0;  // resumes (base + delta) on a different
                               // replica than the one that checkpointed
  std::size_t drains = 0;      // proactive-drain stops at a checkpoint cut
  bool shed = false;  // admission control shed it (local decode or reject)
};

struct FleetReport {
  std::vector<FleetRecord> requests;  // arrival order
  std::vector<FleetWorkerStats> prefill_workers;
  std::vector<FleetWorkerStats> decode_workers;

  std::size_t total_generated = 0;
  std::size_t wire_bytes_total = 0;
  std::size_t fp16_kv_bytes_total = 0;
  double makespan_s = 0.0;
  SampleStats ttft_s;
  SampleStats jct_s;

  // Fleet-level rollups.
  std::size_t reroutes_total = 0;
  std::size_t prefill_failovers_total = 0;
  std::size_t shed_total = 0;
  std::size_t re_prefills_total = 0;
  // The headline contract: decode-worker failures re-route the serialized
  // blob, they never send the prompt back through prefill. Zero by
  // construction; kept as a counter so tests and the CI chaos leg assert it
  // non-vacuously.
  std::size_t re_prefills_from_decode_crashes = 0;
  std::size_t health_transitions_total = 0;

  // Checkpoint / live-migration rollups (all zero unless the worker config's
  // checkpoint_every_tokens is on).
  std::size_t checkpoints_total = 0;
  std::size_t checkpoint_bytes_total = 0;
  std::size_t checkpoint_failures_total = 0;
  std::size_t resumes_total = 0;
  std::size_t tokens_replayed_total = 0;
  std::size_t tokens_recomputed_total = 0;
  std::size_t migrations_total = 0;
  std::size_t drain_events_total = 0;

  // Fault/recovery rollups (sums of the per-request counters, as in
  // DisaggReport).
  std::size_t retries_total = 0;
  std::size_t chunks_dropped_total = 0;
  std::size_t chunks_corrupted_total = 0;
  std::size_t crc_failures_total = 0;
  std::size_t prefill_crashes_total = 0;
  std::size_t decode_crashes_total = 0;
  std::size_t retransmitted_bytes_total = 0;
  std::size_t fallbacks = 0;        // shed requests decoded locally
  std::size_t deadline_misses = 0;
  std::size_t rejected = 0;         // shed/failed requests dropped outright
};

// Orchestrates the fleet over one FCFS arrival timeline: measured compute,
// netsim-modeled per-link transfers, health-gated policy dispatch, and the
// single-pair engine's bounded retry budget per request.
class FleetEngine {
 public:
  FleetEngine(std::shared_ptr<const TinyModelWeights> weights,
              FleetConfig config = {});

  std::size_t prefill_count() const { return prefill_.size(); }
  std::size_t decode_count() const { return decode_.size(); }
  PrefillWorker& prefill_worker(std::size_t i) { return *prefill_.at(i); }
  DecodeWorker& decode_worker(std::size_t j) { return *decode_.at(j); }

  // The (prefill × decode) link's fault injector. Each link's model is
  // seeded independently from config.worker.transfer_faults via
  // fault_config_for_link; set_link_faults replaces one link's config (e.g.
  // to schedule a down window on exactly one path).
  FaultModel& link_faults(std::size_t prefill, std::size_t decode);
  void set_link_faults(std::size_t prefill, std::size_t decode,
                       const FaultConfig& config);

  // Sum of every link's injection ledger — the ground truth the report's
  // fault counters are asserted against.
  FaultStats fault_ledger() const;

  FleetReport run(std::vector<ServingRequest> requests);

 private:
  struct HealthTracker {
    WorkerHealth state = WorkerHealth::kHealthy;
    std::size_t consecutive_failures = 0;
    std::size_t probation = 0;
    double down_since_s = 0.0;
    std::vector<HealthTransition> transitions;

    void transition(WorkerHealth to, double t);
    void refresh(double t, const HealthPolicy& policy);
    void on_success(double t, const HealthPolicy& policy);
    void on_failure(double t, const HealthPolicy& policy, bool fatal);
  };

  // Bytes committed to a worker until their service completes on the
  // timeline — what outstanding_bytes/active_requests snapshots count.
  struct Commitment {
    double until_s = 0.0;
    std::size_t bytes = 0;
  };

  struct WorkerBook {
    HealthTracker health;
    double free_s = 0.0;
    double busy_s = 0.0;
    std::vector<Commitment> commitments;
    std::size_t served = 0;
    std::size_t crashes = 0;
    std::size_t transfer_failures = 0;
    std::size_t drains = 0;  // decode books only
  };

  FaultModel* link(std::size_t prefill, std::size_t decode) {
    return links_.at(prefill * decode_.size() + decode).get();
  }

  WorkerSnapshot snapshot(const WorkerBook& book, std::size_t index, double t,
                          std::size_t free_blocks) const;
  // Builds the eligible candidate set at time t and consults the policy.
  // Returns kNoWorker when no worker is eligible.
  std::size_t pick_prefill(const DispatchContext& context, double t);
  std::size_t pick_decode(const DispatchContext& context, double t);
  // Earliest instant a down worker in `books` becomes recovering (infinity
  // when none is down).
  double earliest_recovery(const std::vector<WorkerBook>& books) const;
  std::size_t decode_pool_capacity(std::size_t j) const;

  std::shared_ptr<const TinyModelWeights> weights_;
  FleetConfig config_;
  std::vector<std::unique_ptr<PrefillWorker>> prefill_;
  std::vector<std::unique_ptr<DecodeWorker>> decode_;
  std::vector<std::unique_ptr<FaultModel>> links_;  // row-major [p][d]
  std::vector<WorkerBook> prefill_book_;
  std::vector<WorkerBook> decode_book_;
  std::uint64_t rr_prefill_ = 0;
  std::uint64_t rr_decode_ = 0;
};

}  // namespace hack
