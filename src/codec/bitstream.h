// Bit-granular serialization for the KV codecs.
//
// BitWriter/BitReader append and consume integers of arbitrary width (LSB
// first within a byte). The CacheGen-style codec stores Rice-coded deltas and
// the KVQuant codec stores packed 2-bit codes through these.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/check.h"

namespace hack {

class BitWriter {
 public:
  // Appends the low `width` bits of `value` (width in [0, 57]).
  void write_bits(std::uint64_t value, int width);

  // Appends a single bit.
  void write_bit(bool bit) { write_bits(bit ? 1 : 0, 1); }

  // Appends `count` one-bits followed by a zero (unary coding).
  void write_unary(std::uint32_t count);

  // Pads with zero bits to the next byte boundary (no-op when aligned).
  void align_to_byte();

  // Appends whole bytes verbatim; the stream must be byte-aligned. This is
  // how the codecs splice in code sections that were bit-packed in parallel.
  void append_aligned_bytes(std::span<const std::uint8_t> bytes);

  // Flushes to a byte boundary and returns the buffer.
  std::vector<std::uint8_t> finish();

  std::size_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t pending_ = 0;
  int pending_bits_ = 0;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t read_bits(int width);
  bool read_bit() { return read_bits(1) != 0; }
  std::uint32_t read_unary();

  // Skips padding to the next byte boundary (no-op when aligned).
  void align_to_byte();

  // Returns a view of the next `count` whole bytes and advances past them;
  // the stream must be byte-aligned. The view aliases the reader's buffer.
  std::span<const std::uint8_t> view_aligned_bytes(std::size_t count);

  std::size_t bits_consumed() const { return bit_pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t bit_pos_ = 0;
};

// Zigzag mapping for signed deltas: 0,-1,1,-2,2.. -> 0,1,2,3,4..
std::uint32_t zigzag_encode(std::int32_t v);
std::int32_t zigzag_decode(std::uint32_t v);

}  // namespace hack
