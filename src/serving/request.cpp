#include "serving/request.h"

#include <algorithm>

#include "base/check.h"
#include "workload/corpus.h"

namespace hack {

const char* request_state_name(RequestState state) {
  switch (state) {
    case RequestState::kQueued: return "queued";
    case RequestState::kPrefill: return "prefill";
    case RequestState::kDecoding: return "decoding";
    case RequestState::kSwapped: return "swapped";
    case RequestState::kFinished: return "finished";
    case RequestState::kRejected: return "rejected";
  }
  return "?";
}

std::vector<double> ServingRecord::tbt_s() const {
  std::vector<double> gaps;
  if (token_times_s.size() < 2) return gaps;
  gaps.reserve(token_times_s.size() - 1);
  for (std::size_t i = 1; i < token_times_s.size(); ++i) {
    gaps.push_back(token_times_s[i] - token_times_s[i - 1]);
  }
  return gaps;
}

std::vector<ServingRequest> requests_from_arrivals(
    const std::vector<ArrivalRecord>& arrivals, std::size_t vocab,
    std::uint64_t prompt_seed, std::size_t max_input,
    std::size_t max_output) {
  SyntheticCorpus corpus({.vocab = vocab}, prompt_seed);
  std::vector<ServingRequest> requests;
  requests.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const ArrivalRecord& a = arrivals[i];
    auto clamp_len = [](double sampled, std::size_t cap) {
      std::size_t n = sampled < 1.0 ? 1 : static_cast<std::size_t>(sampled);
      if (cap > 0) n = std::min(n, cap);
      return std::max<std::size_t>(n, 1);
    };
    ServingRequest req;
    req.id = i;
    req.arrival_time_s = a.time;
    req.prompt = corpus.prompt(i, clamp_len(a.shape.input_tokens, max_input));
    req.max_new_tokens = clamp_len(a.shape.output_tokens, max_output);
    requests.push_back(std::move(req));
  }
  return requests;
}

}  // namespace hack
