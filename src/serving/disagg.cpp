#include "serving/disagg.h"

#include <algorithm>
#include <chrono>

#include "netsim/transfer.h"
#include "serving/scheduler.h"

namespace hack {
namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// A contiguous byte span of the blob carried by one transfer chunk.
struct ChunkRange {
  std::size_t off = 0;
  std::size_t len = 0;
};

std::vector<ChunkRange> chunk_ranges(std::size_t bytes, int chunks) {
  std::vector<ChunkRange> ranges(static_cast<std::size_t>(chunks));
  for (int i = 0; i < chunks; ++i) {
    const std::size_t begin = bytes * static_cast<std::size_t>(i) /
                              static_cast<std::size_t>(chunks);
    const std::size_t end = bytes * (static_cast<std::size_t>(i) + 1) /
                            static_cast<std::size_t>(chunks);
    ranges[static_cast<std::size_t>(i)] = {begin, end - begin};
  }
  return ranges;
}

// Flips one deterministically chosen bit inside the chunk's byte range — the
// transport-level realization of a FaultModel kCorrupted fate.
void corrupt_range(std::vector<std::uint8_t>& wire, const ChunkRange& range,
                   std::uint64_t entropy) {
  if (range.len == 0) return;
  const std::size_t byte = range.off + static_cast<std::size_t>(entropy % range.len);
  const unsigned bit = static_cast<unsigned>((entropy >> 32) % 8);
  wire[byte] ^= static_cast<std::uint8_t>(1u << bit);
}

// The continuation of TinyTransformer::generate after its prefill: rehydrate
// the blob into a fresh session and replay generate()'s decode iterations
// exactly — same eos/max semantics, same per-step call sequence, same
// stochastic draws (the wire restored every RNG stream). Shared by the
// decode worker and the prefill worker's local fallback so both paths are
// bit-identical by construction.
struct BlobDecode {
  std::vector<int> generated;
  double deserialize_s = 0.0;
  double decode_s = 0.0;
};

BlobDecode decode_blob(const std::shared_ptr<const TinyModelWeights>& weights,
                       const DisaggConfig& config,
                       std::span<const std::uint8_t> blob, int first_token,
                       const ServingRequest& request) {
  BlobDecode out;
  const auto deser_start = std::chrono::steady_clock::now();
  TinyModelSession session(
      weights, make_hack_layer_backend(config.attn, config.backend_seed));
  deserialize_session_kv(blob, session);
  out.deserialize_s = seconds_since(deser_start);

  const auto decode_start = std::chrono::steady_clock::now();
  int token = first_token;
  for (std::size_t i = 0; i < request.max_new_tokens; ++i) {
    if (token == request.eos) break;
    out.generated.push_back(token);
    const Matrix hidden = session.forward_rows({token});
    token = argmax_logits(session.logits_for_row(hidden, hidden.rows() - 1));
  }
  out.decode_s = seconds_since(decode_start);
  return out;
}

// Consumes one scripted crash if armed for this request index.
void maybe_crash(std::map<std::size_t, std::size_t>& crashes,
                 std::size_t request_index, const std::string& worker) {
  const auto it = crashes.find(request_index);
  if (it != crashes.end() && it->second > 0) {
    --it->second;
    throw WorkerCrash(worker + " worker crashed at request " +
                      std::to_string(request_index));
  }
}

// The decode loop proper, shared by decode() and resume(): continue from an
// already-generated prefix (empty on a fresh decode, the replayed suffix on
// a resume) with the session's KV rows matching it. Cuts a v3 delta against
// `base_tokens` (the prefill handoff position) every K tokens when a sink is
// installed — after the token's KV row is committed and the next input token
// computed, so base + delta reproduces the loop state exactly. Capture time
// is excluded from decode_s (checkpointing is overhead traffic, not model
// compute).
struct DecodeLoop {
  std::vector<int> generated;
  double decode_s = 0.0;
  bool drained = false;
};

DecodeLoop run_decode_loop(TinyModelSession& session,
                           std::vector<int> generated, int token,
                           const ServingRequest& request,
                           const DisaggConfig& config,
                           std::uint64_t base_tokens,
                           const CheckpointSink& sink,
                           std::map<std::size_t, std::size_t>& mid_crashes,
                           std::size_t request_index,
                           const std::string& worker_name) {
  DecodeLoop out;
  out.generated = std::move(generated);
  const std::size_t cadence = config.checkpoint_every_tokens;
  const auto decode_start = std::chrono::steady_clock::now();
  double capture_s = 0.0;
  while (out.generated.size() < request.max_new_tokens &&
         token != request.eos) {
    out.generated.push_back(token);
    const Matrix hidden = session.forward_rows({token});
    token = argmax_logits(session.logits_for_row(hidden, hidden.rows() - 1));
    const bool more = out.generated.size() < request.max_new_tokens &&
                      token != request.eos;
    if (sink && cadence > 0 && more && out.generated.size() % cadence == 0) {
      const auto capture_start = std::chrono::steady_clock::now();
      DecodeCheckpoint ckpt;
      ckpt.tokens_decoded = out.generated.size();
      ckpt.delta = serialize_session_kv_delta(
          session, base_tokens, {out.generated, token}, &ckpt.sections);
      capture_s += seconds_since(capture_start);
      if (!sink(std::move(ckpt))) {
        out.drained = true;
        break;
      }
    }
    // Scripted mid-decode crash: fires at an exact decoded-token count,
    // after any checkpoint due at that count left the worker.
    const auto it = mid_crashes.find(request_index);
    if (it != mid_crashes.end() && it->second == out.generated.size()) {
      mid_crashes.erase(it);
      throw MidDecodeCrash(worker_name + " worker crashed mid-decode at " +
                               std::to_string(out.generated.size()) +
                               " tokens of request " +
                               std::to_string(request_index),
                           out.generated.size());
    }
  }
  out.decode_s = seconds_since(decode_start) - capture_s;
  return out;
}

}  // namespace

Rng retry_jitter_rng(const RetryPolicy& policy, std::uint64_t request_index) {
  // splitmix64 finalizer over the index; index 0 keeps the bare seed so
  // single-request episodes replay the pre-fleet stream.
  std::uint64_t mixed = policy.jitter_seed;
  if (request_index != 0) {
    std::uint64_t z = request_index + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    mixed ^= z ^ (z >> 31);
  }
  return Rng(mixed);
}

double retry_backoff_s(const RetryPolicy& policy, std::size_t round,
                       Rng& jitter) {
  double backoff = policy.backoff_base_s;
  for (std::size_t i = 0; i < round; ++i) backoff *= policy.backoff_mult;
  return backoff * (1.0 + policy.backoff_jitter * jitter.next_double());
}

PrefillWorker::PrefillWorker(std::shared_ptr<const TinyModelWeights> weights,
                             const DisaggConfig& config, std::string name)
    : weights_(std::move(weights)), config_(config), name_(std::move(name)),
      nic_(config.prefill_nic_gbps) {}

void PrefillWorker::inject_crash(std::size_t request_index,
                                 std::size_t times) {
  crashes_[request_index] += times;
}

PrefillWorker::Result PrefillWorker::prefill(const ServingRequest& request,
                                             std::size_t request_index) {
  maybe_crash(crashes_, request_index, name_);
  HACK_CHECK(!request.prompt.empty(), "prefill needs a non-empty prompt");
  TinyModelSession session(
      weights_, make_hack_layer_backend(config_.attn, config_.backend_seed));

  Result result;
  const auto compute_start = std::chrono::steady_clock::now();
  SchedulerConfig chunk_cfg;
  chunk_cfg.prefill_chunk_tokens = config_.prefill_chunk_tokens == 0
                                       ? request.prompt.size()
                                       : config_.prefill_chunk_tokens;
  const Scheduler chunker(chunk_cfg);
  std::vector<float> last_logits;
  std::size_t begin = 0;
  while (begin < request.prompt.size()) {
    const std::size_t end = chunker.chunk_end(begin, request.prompt.size());
    const std::vector<int> chunk(request.prompt.begin() + begin,
                                 request.prompt.begin() + end);
    const Matrix hidden = session.forward_rows(chunk);
    if (end == request.prompt.size()) {
      last_logits = session.logits_for_row(hidden, hidden.rows() - 1);
    }
    ++result.prefill_chunks;
    begin = end;
  }
  result.first_token = argmax_logits(last_logits);
  result.prefill_s = seconds_since(compute_start);

  const auto serialize_start = std::chrono::steady_clock::now();
  result.blob = serialize_session_kv(session, &result.sections);
  result.serialize_s = seconds_since(serialize_start);
  return result;
}

PrefillWorker::LocalDecode PrefillWorker::local_decode(
    std::span<const std::uint8_t> blob, int first_token,
    const ServingRequest& request) {
  const BlobDecode d =
      decode_blob(weights_, config_, blob, first_token, request);
  return {d.generated, d.deserialize_s, d.decode_s};
}

DecodeWorker::DecodeWorker(std::shared_ptr<const TinyModelWeights> weights,
                           const DisaggConfig& config, std::string name)
    : weights_(std::move(weights)), config_(config), name_(std::move(name)),
      nic_(config.decode_nic_gbps) {
  if (config_.decode_kv_blocks > 0) {
    // Accounting blocks sized like the serving engine's: FP16 K+V bytes of
    // block_tokens tokens across all layers and KV heads.
    const TinyConfig& c = weights_->config();
    allocator_ = std::make_unique<BlockAllocator>(
        config_.decode_kv_blocks,
        config_.block_tokens * c.kv_heads * c.d_head * 2 * 2 * c.layers);
  }
}

void DecodeWorker::inject_crash(std::size_t request_index, std::size_t times) {
  crashes_[request_index] += times;
}

void DecodeWorker::inject_crash_at_token(std::size_t request_index,
                                         std::size_t token_index) {
  HACK_CHECK(token_index > 0, "a mid-decode crash needs at least one token");
  mid_crashes_[request_index] = token_index;
}

std::size_t DecodeWorker::blocks_needed(std::size_t blob_tokens,
                                        std::size_t max_new_tokens) const {
  return (blob_tokens + max_new_tokens + config_.block_tokens - 1) /
         config_.block_tokens;
}

std::size_t DecodeWorker::free_kv_blocks() const {
  return allocator_ == nullptr ? SIZE_MAX : allocator_->blocks_free();
}

DecodeWorker::Result DecodeWorker::decode(std::span<const std::uint8_t> blob,
                                          int first_token,
                                          const ServingRequest& request,
                                          std::size_t request_index,
                                          const CheckpointSink& sink) {
  maybe_crash(crashes_, request_index, name_);
  Result result;
  // Integrity gate: the header parse throws KvWireError on a corrupted or
  // truncated blob before any admission state is touched.
  const KvWireInfo info = parse_kv_wire_header(blob);

  // Worst-case block reservation, like the engine's admission control:
  // prompt tokens already in the blob plus every token we may yet append.
  std::vector<BlockId> reserved;
  if (allocator_ != nullptr) {
    const std::size_t need =
        blocks_needed(info.tokens, request.max_new_tokens);
    if (!allocator_->can_allocate(need)) {
      return result;  // not admitted
    }
    for (std::size_t i = 0; i < need; ++i) {
      reserved.push_back(allocator_->allocate());
    }
    result.kv_blocks = reserved.size();
  }
  result.admitted = true;

  try {
    const auto deser_start = std::chrono::steady_clock::now();
    TinyModelSession session(
        weights_, make_hack_layer_backend(config_.attn, config_.backend_seed));
    deserialize_session_kv(blob, session);
    result.deserialize_s = seconds_since(deser_start);

    DecodeLoop loop =
        run_decode_loop(session, {}, first_token, request, config_,
                        info.tokens, sink, mid_crashes_, request_index, name_);
    result.decode_s = loop.decode_s;
    result.generated = std::move(loop.generated);
    result.drained = loop.drained;
  } catch (...) {
    // Record CRC / section failures and scripted crashes surface here; hand
    // back the reserved blocks before propagating so a retry sees a clean
    // pool.
    for (const BlockId id : reserved) allocator_->release(id);
    throw;
  }

  for (const BlockId id : reserved) allocator_->release(id);
  return result;
}

DecodeWorker::Result DecodeWorker::resume(
    std::span<const std::uint8_t> base_blob,
    std::span<const std::uint8_t> delta_blob, const ServingRequest& request,
    std::size_t request_index, const CheckpointSink& sink) {
  maybe_crash(crashes_, request_index, name_);
  Result result;
  const KvWireInfo base_info = parse_kv_wire_header(base_blob);

  // Same worst-case reservation as a fresh decode: the base's prompt tokens
  // plus everything the request may still append (replayed rows included).
  std::vector<BlockId> reserved;
  if (allocator_ != nullptr) {
    const std::size_t need =
        blocks_needed(base_info.tokens, request.max_new_tokens);
    if (!allocator_->can_allocate(need)) {
      return result;  // not admitted
    }
    for (std::size_t i = 0; i < need; ++i) {
      reserved.push_back(allocator_->allocate());
    }
    result.kv_blocks = reserved.size();
  }
  result.admitted = true;

  try {
    const auto deser_start = std::chrono::steady_clock::now();
    TinyModelSession session(
        weights_, make_hack_layer_backend(config_.attn, config_.backend_seed));
    deserialize_session_kv(base_blob, session);
    const KvDeltaSuffix suffix = apply_session_kv_delta(delta_blob, session);
    result.deserialize_s = seconds_since(deser_start);
    result.replayed_tokens = suffix.generated.size();

    // Continue the decode loop mid-stride: the suffix tokens count toward
    // max_new and the next input token is the one the crashed worker had
    // already computed — bit-identical to the uninterrupted run.
    DecodeLoop loop = run_decode_loop(
        session, suffix.generated, suffix.next_token, request, config_,
        base_info.tokens, sink, mid_crashes_, request_index, name_);
    result.decode_s = loop.decode_s;
    result.generated = std::move(loop.generated);
    result.drained = loop.drained;
  } catch (...) {
    for (const BlockId id : reserved) allocator_->release(id);
    throw;
  }

  for (const BlockId id : reserved) allocator_->release(id);
  return result;
}

DisaggEngine::DisaggEngine(std::shared_ptr<const TinyModelWeights> weights,
                           DisaggConfig config)
    : weights_(std::move(weights)), config_(config),
      prefill_(weights_, config_), decode_(weights_, config_),
      faults_(config_.transfer_faults) {}

DisaggReport DisaggEngine::run(std::vector<ServingRequest> requests) {
  std::sort(requests.begin(), requests.end(),
            [](const ServingRequest& a, const ServingRequest& b) {
              return a.arrival_time_s < b.arrival_time_s;
            });

  DisaggReport report;
  std::vector<double> ttfts, jcts;
  const TinyConfig& c = weights_->config();
  const RetryPolicy& policy = config_.retry;
  for (std::size_t index = 0; index < requests.size(); ++index) {
    const ServingRequest& request = requests[index];
    DisaggRecord rec;
    rec.request = request;
    std::size_t budget = policy.max_retries;
    Rng jitter = retry_jitter_rng(policy, index);

    // Prefill occupies its worker for the measured compute + serialize time
    // (plus any crash-recovery backoffs); the transfer then rides the NICs
    // while the worker takes the next prompt (the overlap the paper's
    // pipelining discussion assumes).
    const double prefill_start =
        std::max(request.arrival_time_s, prefill_free_s_);
    double prefill_backoffs = 0.0;
    PrefillWorker::Result pre;
    bool prefilled = false;
    while (!prefilled) {
      try {
        pre = prefill_.prefill(request, index);
        prefilled = true;
      } catch (const WorkerCrash&) {
        ++rec.prefill_crashes;
        if (budget == 0) break;
        --budget;
        const double wait = retry_backoff_s(policy, rec.retries, jitter);
        ++rec.retries;
        rec.backoff_s += wait;
        prefill_backoffs += wait;
        // The restarted worker re-runs the whole prefill — nothing of the
        // crashed attempt survives, so the next attempt is bit-identical.
      }
    }
    if (!prefilled) {
      // No KV state exists anywhere; there is nothing to degrade to.
      rec.rejected = true;
      report.retries_total += rec.retries;
      report.prefill_crashes_total += rec.prefill_crashes;
      report.requests.push_back(std::move(rec));
      continue;
    }
    rec.prefill_s = pre.prefill_s;
    rec.serialize_s = pre.serialize_s;
    rec.prefill_chunks = pre.prefill_chunks;
    rec.wire_bytes = pre.blob.size();
    rec.sections = pre.sections;
    rec.fp16_kv_bytes = parse_kv_wire_header(pre.blob).tokens * c.kv_heads *
                        c.d_head * 2 * 2 * c.layers;
    prefill_free_s_ =
        prefill_start + prefill_backoffs + pre.prefill_s + pre.serialize_s;

    // Transfer + decode under the retry policy. `wire` is the receiver-side
    // reassembly buffer; retransmissions always source the pristine blob.
    const double transfer_epoch = prefill_free_s_;
    double ready = transfer_epoch;
    double first_start = -1.0;
    double last_finish = transfer_epoch;
    bool first_transmission = true;

    const auto deadline_passed = [&] {
      return policy.transfer_deadline_s > 0.0 &&
             last_finish - transfer_epoch > policy.transfer_deadline_s;
    };
    // Books delivery of one blob over the faulty link: transmits its chunk
    // ranges, retransmitting dropped chunks (with backoff) until all land or
    // the budget/deadline gives out. Corrupted chunks land with a bit
    // flipped — detection is the receiver's CRC check, not the transport's.
    // `first` feeds the retransmitted_bytes ledger: request-scoped for the
    // base blob (a post-crash redelivery is a retransmission), per-delivery
    // for checkpoint traffic (each delta's first copy is new bytes).
    const auto deliver_blob = [&](std::vector<std::uint8_t>& wire, Nic& src,
                                  Nic& dst, bool& first) {
      const int chunks =
          kv_wire_transfer_chunks(wire.size(), config_.transfer_chunk_bytes);
      std::vector<ChunkRange> pending = chunk_ranges(wire.size(), chunks);
      while (true) {
        double bytes = 0.0;
        for (const ChunkRange& r : pending) bytes += static_cast<double>(r.len);
        if (!first) {
          rec.retransmitted_bytes += static_cast<std::size_t>(bytes);
        }
        const FaultyTransferResult attempt = nccl_transfer_faulty(
            src, dst, ready, bytes, static_cast<int>(pending.size()),
            &faults_);
        first = false;
        if (first_start < 0.0) first_start = attempt.result.start;
        last_finish = std::max(last_finish, attempt.result.finish);

        std::vector<ChunkRange> still_pending;
        for (std::size_t i = 0; i < pending.size(); ++i) {
          const ChunkEvent& event = attempt.chunks[i];
          if (event.fate == ChunkFate::kDropped) {
            ++rec.chunks_dropped;
            still_pending.push_back(pending[i]);
          } else if (event.fate == ChunkFate::kCorrupted) {
            ++rec.chunks_corrupted;
            corrupt_range(wire, pending[i], event.corrupt_entropy);
          }
        }
        if (still_pending.empty()) return true;
        if (deadline_passed()) {
          rec.deadline_missed = true;
          return false;
        }
        if (budget == 0) return false;
        --budget;
        const double wait = retry_backoff_s(policy, rec.retries, jitter);
        ++rec.retries;
        rec.backoff_s += wait;
        ready = last_finish + wait;
        pending = std::move(still_pending);
      }
    };
    const auto deliver = [&](std::vector<std::uint8_t>& wire) {
      return deliver_blob(wire, prefill_.nic(), decode_.nic(),
                          first_transmission);
    };

    // Checkpoint store: the standby (prefill side here) keeps the latest
    // *verified* delta; a resuming worker needs base + this blob only. The
    // sink buffers cuts during the worker call; the engine books their
    // deliveries afterwards, in cut order — checkpoints that left a crashing
    // worker before it died still reach the store.
    std::vector<std::uint8_t> stored_delta;
    std::size_t stored_tokens = 0;
    std::vector<DecodeCheckpoint> cut;
    CheckpointSink sink;
    if (config_.checkpoint_every_tokens > 0) {
      sink = [&cut](DecodeCheckpoint c) {
        cut.push_back(std::move(c));
        return true;  // the single-pair engine never drains
      };
    }
    const auto book_checkpoints = [&] {
      for (DecodeCheckpoint& c : cut) {
        ++rec.checkpoints;
        rec.checkpoint_bytes += c.delta.size();
        bool stored = false;
        while (!stored) {
          std::vector<std::uint8_t> wire = c.delta;
          bool first = true;
          if (!deliver_blob(wire, decode_.nic(), prefill_.nic(), first)) break;
          try {
            // Admission gate: a delta is stored only after its CRC frames
            // verify on the delivered bytes — a corrupted delivery costs a
            // redelivery round, never a poisoned store.
            verify_kv_wire(wire);
          } catch (const KvWireError&) {
            ++rec.crc_failures;
            if (budget == 0) break;
            --budget;
            const double wait = retry_backoff_s(policy, rec.retries, jitter);
            ++rec.retries;
            rec.backoff_s += wait;
            ready = last_finish + wait;
            continue;
          }
          stored_delta = std::move(wire);
          stored_tokens = c.tokens_decoded;
          stored = true;
        }
        // Budget exhausted before the delta landed: the store keeps the
        // previous checkpoint; a resume just replays a longer window.
        if (!stored) ++rec.checkpoint_failures;
      }
      cut.clear();
    };

    DecodeWorker::Result dec;
    bool delivered = false;
    bool failed = false;
    while (!delivered && !failed) {
      std::vector<std::uint8_t> wire = pre.blob;
      if (!deliver(wire)) {
        failed = true;
        break;
      }
      if (deadline_passed()) {
        rec.deadline_missed = true;
        failed = true;
        break;
      }
      bool retransmit = false;
      // A restarted worker resumes from base + stored delta when the store
      // has one (only ever true after a crash); the delta ships back over
      // the link first. If its delivery exhausts the budget, fall back to a
      // full recompute from the base blob — the previously salvaged tokens
      // are recomputed after all.
      bool resume_now = stored_tokens > 0;
      std::vector<std::uint8_t> delta_wire;
      if (resume_now) {
        delta_wire = stored_delta;
        bool first = true;
        if (!deliver_blob(delta_wire, prefill_.nic(), decode_.nic(), first)) {
          resume_now = false;
          rec.tokens_recomputed += stored_tokens;
        }
      }
      try {
        if (resume_now) {
          dec = decode_.resume(wire, delta_wire, request, index, sink);
        } else {
          dec = decode_.decode(wire, pre.first_token, request, index, sink);
        }
        book_checkpoints();
        if (!dec.admitted) {
          failed = true;  // pool rejection → graceful degradation
          break;
        }
        if (resume_now) {
          ++rec.resumes;
          rec.tokens_replayed += dec.replayed_tokens;
        }
        delivered = true;
      } catch (const MidDecodeCrash& crash) {
        // Mid-generation death: tokens past the last stored checkpoint are
        // the lost window. Checkpoints cut before the crash had already left
        // the worker — book them into the store now.
        ++rec.decode_crashes;
        book_checkpoints();
        rec.tokens_recomputed +=
            crash.tokens_decoded - std::min(stored_tokens,
                                            crash.tokens_decoded);
        retransmit = true;
      } catch (const WorkerCrash&) {
        // The restarted worker lost its receive buffer with the crash.
        ++rec.decode_crashes;
        cut.clear();
        retransmit = true;
      } catch (const KvWireError&) {
        // Corruption survived the transport; the typed CRC/section error is
        // the signal for a full-blob retransmit.
        ++rec.crc_failures;
        cut.clear();
        retransmit = true;
      }
      if (retransmit) {
        if (budget == 0) {
          failed = true;
          break;
        }
        --budget;
        const double wait = retry_backoff_s(policy, rec.retries, jitter);
        ++rec.retries;
        rec.backoff_s += wait;
        ready = last_finish + wait;
      }
    }
    rec.transfer_s = first_start < 0.0 ? 0.0 : last_finish - first_start;
    report.transfer_s_total += rec.transfer_s;

    double first_token_at = 0.0;
    double finish_at = 0.0;
    if (delivered) {
      rec.deserialize_s = dec.deserialize_s;
      rec.decode_s = dec.decode_s;
      rec.decode_kv_blocks = dec.kv_blocks;
      rec.generated = std::move(dec.generated);
      first_token_at =
          std::max(last_finish, decode_free_s_) + dec.deserialize_s;
      finish_at = first_token_at + dec.decode_s;
      decode_free_s_ = finish_at;
    } else if (policy.fallback_local) {
      // Graceful degradation: the prefill worker decodes from its own copy
      // of the blob — bit-identical to the decode worker's continuation, at
      // the cost of occupying the prefill worker.
      rec.fallback_local = true;
      ++report.fallbacks;
      const PrefillWorker::LocalDecode fb =
          prefill_.local_decode(pre.blob, pre.first_token, request);
      rec.deserialize_s = fb.deserialize_s;
      rec.decode_s = fb.decode_s;
      rec.generated = fb.generated;
      const double fallback_start = std::max(last_finish, prefill_free_s_);
      first_token_at = fallback_start + fb.deserialize_s;
      finish_at = first_token_at + fb.decode_s;
      prefill_free_s_ = finish_at;
    } else {
      rec.rejected = true;
    }

    report.retries_total += rec.retries;
    report.chunks_dropped_total += rec.chunks_dropped;
    report.chunks_corrupted_total += rec.chunks_corrupted;
    report.crc_failures_total += rec.crc_failures;
    report.prefill_crashes_total += rec.prefill_crashes;
    report.decode_crashes_total += rec.decode_crashes;
    report.retransmitted_bytes_total += rec.retransmitted_bytes;
    report.checkpoints_total += rec.checkpoints;
    report.checkpoint_bytes_total += rec.checkpoint_bytes;
    report.checkpoint_failures_total += rec.checkpoint_failures;
    report.resumes_total += rec.resumes;
    report.tokens_replayed_total += rec.tokens_replayed;
    report.tokens_recomputed_total += rec.tokens_recomputed;
    if (rec.deadline_missed) ++report.deadline_misses;
    if (rec.rejected) {
      report.requests.push_back(std::move(rec));
      continue;
    }

    rec.ttft_s = first_token_at - request.arrival_time_s;
    rec.jct_s = finish_at - request.arrival_time_s;
    ttfts.push_back(rec.ttft_s);
    jcts.push_back(rec.jct_s);

    report.total_generated += rec.generated.size();
    report.wire_bytes_total += rec.wire_bytes;
    report.fp16_kv_bytes_total += rec.fp16_kv_bytes;
    report.makespan_s = std::max(report.makespan_s, finish_at);
    report.requests.push_back(std::move(rec));
  }

  if (report.fp16_kv_bytes_total > 0) {
    report.wire_vs_fp16 =
        static_cast<double>(report.wire_bytes_total) /
        static_cast<double>(report.fp16_kv_bytes_total);
  }
  if (!ttfts.empty()) report.ttft_s = compute_stats(std::move(ttfts));
  if (!jcts.empty()) report.jct_s = compute_stats(std::move(jcts));
  if (decode_.allocator() != nullptr) {
    report.decode_failed_allocations = decode_.allocator()->failed_allocations();
    report.decode_min_free_watermark = decode_.allocator()->min_free_watermark();
  }
  if (decode_.observed_paged_cache() != nullptr) {
    report.decode_oom_appends = decode_.observed_paged_cache()->oom_appends();
  }
  return report;
}

DisaggRecord DisaggEngine::serve(const ServingRequest& request) {
  DisaggReport report = run({request});
  HACK_CHECK(report.requests.size() == 1, "single-request episode");
  return std::move(report.requests[0]);
}

}  // namespace hack
