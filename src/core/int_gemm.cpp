#include "core/int_gemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define HACK_X86_SIMD 1
#include <immintrin.h>
#endif

namespace hack {
namespace {

std::atomic<bool> g_force_portable{false};

bool force_portable() {
  return g_force_portable.load(std::memory_order_relaxed);
}

// Storage stride of one packed row (bytes). BITS == 8 is the classic
// one-byte-per-code layout.
template <int BITS>
constexpr std::size_t row_stride(std::size_t cols) {
  if constexpr (BITS == 8) return cols;
  return (cols * static_cast<std::size_t>(BITS) + 7) / 8;
}

// Scalar extraction of code c from a (possibly bit-packed) row.
template <int BITS>
inline std::uint8_t code_load(const std::uint8_t* row, std::size_t c) {
  if constexpr (BITS == 8) {
    return row[c];
  } else {
    const std::size_t bit = c * static_cast<std::size_t>(BITS);
    return static_cast<std::uint8_t>((row[bit >> 3] >> (bit & 7)) &
                                     ((1u << BITS) - 1u));
  }
}

// Portable NN band: 4-row register tile; each B row streamed once feeds four
// C rows. The inner j-loop is a plain quad-axpy, which the compiler
// vectorizes for byte storage; packed storage extracts codes inline.
template <int BITS>
void int_gemm_nn_rows_portable(const CodeView& a, const CodeView& b,
                               std::size_t i_begin, std::size_t i_end,
                               std::size_t z_begin, std::size_t z_end,
                               std::int32_t* out) {
  const std::size_t n = b.cols;
  const std::size_t bstride = row_stride<BITS>(n);
  std::size_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    std::int32_t* dst0 = out + (i - i_begin) * n;
    std::int32_t* dst1 = dst0 + n;
    std::int32_t* dst2 = dst1 + n;
    std::int32_t* dst3 = dst2 + n;
    const std::uint8_t* arow0 = a.data + i * a.cols;
    for (std::size_t z = z_begin; z < z_end; ++z) {
      const std::int32_t a0 = arow0[z];
      const std::int32_t a1 = arow0[a.cols + z];
      const std::int32_t a2 = arow0[2 * a.cols + z];
      const std::int32_t a3 = arow0[3 * a.cols + z];
      if ((a0 | a1 | a2 | a3) == 0) continue;
      const std::uint8_t* brow = b.data + z * bstride;
      for (std::size_t j = 0; j < n; ++j) {
        const std::int32_t bv = code_load<BITS>(brow, j);
        dst0[j] += a0 * bv;
        dst1[j] += a1 * bv;
        dst2[j] += a2 * bv;
        dst3[j] += a3 * bv;
      }
    }
  }
  for (; i < i_end; ++i) {
    std::int32_t* dst = out + (i - i_begin) * n;
    const std::uint8_t* arow = a.data + i * a.cols;
    for (std::size_t z = z_begin; z < z_end; ++z) {
      const std::int32_t aiz = arow[z];
      if (aiz == 0) continue;
      const std::uint8_t* brow = b.data + z * bstride;
      for (std::size_t j = 0; j < n; ++j) {
        dst[j] += aiz * static_cast<std::int32_t>(code_load<BITS>(brow, j));
      }
    }
  }
}

// Portable NT band: 4x4 register tile, 16 accumulators, each A/B row loaded
// once per z step instead of once per output.
template <int BITS>
void int_gemm_nt_rows_portable(const CodeView& a, const CodeView& b,
                               std::size_t i_begin, std::size_t i_end,
                               std::size_t z_begin, std::size_t z_end,
                               std::int32_t* out) {
  const std::size_t n = b.rows;
  const std::size_t bstride = row_stride<BITS>(b.cols);
  const std::size_t zlen = z_end - z_begin;
  std::size_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    const std::uint8_t* pa0 = a.data + i * a.cols + z_begin;
    const std::uint8_t* pa1 = pa0 + a.cols;
    const std::uint8_t* pa2 = pa1 + a.cols;
    const std::uint8_t* pa3 = pa2 + a.cols;
    std::int32_t* dst0 = out + (i - i_begin) * n;
    std::int32_t* dst1 = dst0 + n;
    std::int32_t* dst2 = dst1 + n;
    std::int32_t* dst3 = dst2 + n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::uint8_t* pb0 = b.data + j * bstride;
      const std::uint8_t* pb1 = pb0 + bstride;
      const std::uint8_t* pb2 = pb1 + bstride;
      const std::uint8_t* pb3 = pb2 + bstride;
      std::int32_t c00 = 0, c01 = 0, c02 = 0, c03 = 0;
      std::int32_t c10 = 0, c11 = 0, c12 = 0, c13 = 0;
      std::int32_t c20 = 0, c21 = 0, c22 = 0, c23 = 0;
      std::int32_t c30 = 0, c31 = 0, c32 = 0, c33 = 0;
      for (std::size_t z = 0; z < zlen; ++z) {
        const std::int32_t a0 = pa0[z], a1 = pa1[z], a2 = pa2[z], a3 = pa3[z];
        const std::int32_t b0 = code_load<BITS>(pb0, z_begin + z);
        const std::int32_t b1 = code_load<BITS>(pb1, z_begin + z);
        const std::int32_t b2 = code_load<BITS>(pb2, z_begin + z);
        const std::int32_t b3 = code_load<BITS>(pb3, z_begin + z);
        c00 += a0 * b0; c01 += a0 * b1; c02 += a0 * b2; c03 += a0 * b3;
        c10 += a1 * b0; c11 += a1 * b1; c12 += a1 * b2; c13 += a1 * b3;
        c20 += a2 * b0; c21 += a2 * b1; c22 += a2 * b2; c23 += a2 * b3;
        c30 += a3 * b0; c31 += a3 * b1; c32 += a3 * b2; c33 += a3 * b3;
      }
      dst0[j] += c00; dst0[j + 1] += c01; dst0[j + 2] += c02; dst0[j + 3] += c03;
      dst1[j] += c10; dst1[j + 1] += c11; dst1[j + 2] += c12; dst1[j + 3] += c13;
      dst2[j] += c20; dst2[j + 1] += c21; dst2[j + 2] += c22; dst2[j + 3] += c23;
      dst3[j] += c30; dst3[j + 1] += c31; dst3[j + 2] += c32; dst3[j + 3] += c33;
    }
    for (; j < n; ++j) {
      const std::uint8_t* pb = b.data + j * bstride;
      std::int32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
      for (std::size_t z = 0; z < zlen; ++z) {
        const std::int32_t bv = code_load<BITS>(pb, z_begin + z);
        c0 += static_cast<std::int32_t>(pa0[z]) * bv;
        c1 += static_cast<std::int32_t>(pa1[z]) * bv;
        c2 += static_cast<std::int32_t>(pa2[z]) * bv;
        c3 += static_cast<std::int32_t>(pa3[z]) * bv;
      }
      dst0[j] += c0;
      dst1[j] += c1;
      dst2[j] += c2;
      dst3[j] += c3;
    }
  }
  for (; i < i_end; ++i) {
    // Tail rows (and the decode GEMV case): one A row against 4 B rows.
    const std::uint8_t* pa = a.data + i * a.cols + z_begin;
    std::int32_t* dst = out + (i - i_begin) * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::uint8_t* pb0 = b.data + j * bstride;
      const std::uint8_t* pb1 = pb0 + bstride;
      const std::uint8_t* pb2 = pb1 + bstride;
      const std::uint8_t* pb3 = pb2 + bstride;
      std::int32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
      for (std::size_t z = 0; z < zlen; ++z) {
        const std::int32_t av = pa[z];
        c0 += av * static_cast<std::int32_t>(code_load<BITS>(pb0, z_begin + z));
        c1 += av * static_cast<std::int32_t>(code_load<BITS>(pb1, z_begin + z));
        c2 += av * static_cast<std::int32_t>(code_load<BITS>(pb2, z_begin + z));
        c3 += av * static_cast<std::int32_t>(code_load<BITS>(pb3, z_begin + z));
      }
      dst[j] += c0;
      dst[j + 1] += c1;
      dst[j + 2] += c2;
      dst[j + 3] += c3;
    }
    for (; j < n; ++j) {
      dst[j] += int_dot_nt(a, b, i, j, z_begin, z_end);
    }
  }
}

#ifdef HACK_X86_SIMD

bool cpu_has_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

// In-register expansion of 16 consecutive codes starting at column j of a
// (possibly packed) row, one code per byte of the returned __m128i. Packed
// callers must pass j with j * BITS on a byte boundary (the vectorized loops
// step j by 16, which keeps any 2-/4-bit offset byte-aligned).
template <int BITS>
__attribute__((target("avx2"))) inline __m128i load16_bcodes(
    const std::uint8_t* row, std::size_t j) {
  if constexpr (BITS == 8) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + j));
  } else if constexpr (BITS == 4) {
    // 8 bytes = 16 nibbles; widen each byte to a 16-bit lane, then place the
    // low nibble in the lane's low byte and the high nibble in its high byte.
    const __m128i t = _mm_cvtepu8_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + j / 2)));
    return _mm_or_si128(_mm_and_si128(t, _mm_set1_epi16(0x000F)),
                        _mm_and_si128(_mm_slli_epi16(t, 4),
                                      _mm_set1_epi16(0x0F00)));
  } else {
    static_assert(BITS == 2);
    // 4 bytes = 16 crumbs; widen each byte to a 32-bit lane and shift each
    // crumb into its own byte of the lane.
    std::uint32_t w;
    std::memcpy(&w, row + j / 4, sizeof(w));
    const __m128i t = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(w)));
    __m128i r = _mm_and_si128(t, _mm_set1_epi32(0x3));
    r = _mm_or_si128(r, _mm_and_si128(_mm_slli_epi32(t, 6),
                                      _mm_set1_epi32(0x300)));
    r = _mm_or_si128(r, _mm_and_si128(_mm_slli_epi32(t, 12),
                                      _mm_set1_epi32(0x30000)));
    r = _mm_or_si128(r, _mm_and_si128(_mm_slli_epi32(t, 18),
                                      _mm_set1_epi32(0x3000000)));
    return r;
  }
}

// Same expansion for 32 consecutive codes starting at column z, one code per
// byte of the returned __m256i. Packed callers must keep z * BITS on a byte
// boundary (the NT loop aligns its vector range first, then steps z by 32).
template <int BITS>
__attribute__((target("avx2"))) inline __m256i load32_bcodes(
    const std::uint8_t* row, std::size_t z) {
  if constexpr (BITS == 8) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + z));
  } else if constexpr (BITS == 4) {
    const __m256i t = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + z / 2)));
    return _mm256_or_si256(_mm256_and_si256(t, _mm256_set1_epi16(0x000F)),
                           _mm256_and_si256(_mm256_slli_epi16(t, 4),
                                            _mm256_set1_epi16(0x0F00)));
  } else {
    static_assert(BITS == 2);
    const __m256i t = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + z / 4)));
    __m256i r = _mm256_and_si256(t, _mm256_set1_epi32(0x3));
    r = _mm256_or_si256(r, _mm256_and_si256(_mm256_slli_epi32(t, 6),
                                            _mm256_set1_epi32(0x300)));
    r = _mm256_or_si256(r, _mm256_and_si256(_mm256_slli_epi32(t, 12),
                                            _mm256_set1_epi32(0x30000)));
    r = _mm256_or_si256(r, _mm256_and_si256(_mm256_slli_epi32(t, 18),
                                            _mm256_set1_epi32(0x3000000)));
    return r;
  }
}

// NN band via explicit widening multiplies. B rows are consumed in z-pairs:
// the bytes of two consecutive B rows are interleaved to [b_z0[j], b_z1[j]]
// (the signed operand of pmaddubsw, which is why this path requires B codes
// < 64) and multiplied against the broadcast A pair [a_i[z0], a_i[z1]] (the
// unsigned operand, full 8-bit range). Each resulting int16 lane holds the
// per-column partial a0·b_z0[j] + a1·b_z1[j] (<= 2·255·63 = 32130, no
// saturation), which is widened in j-order into int32 accumulators held in
// registers across the z-chunk. R is the number of C rows in the register
// tile (4 for the steady state, 1–3 for band remainders and the decode
// GEMV), so packed decode never falls back to scalar extraction.
inline constexpr std::size_t kNnZChunk = 256;  // even, so pairs stay aligned

template <int BITS, int R>
__attribute__((target("avx2"))) void int_gemm_nn_block_avx2(
    const CodeView& a, const CodeView& b, std::size_t i, std::size_t i_begin,
    std::size_t z_begin, std::size_t z_end, std::int32_t* out) {
  const std::size_t n = b.cols;
  const std::size_t bstride = row_stride<BITS>(n);
  const std::size_t jvec = n & ~static_cast<std::size_t>(15);

  for (std::size_t zc = z_begin; zc < z_end; zc += kNnZChunk) {
    const std::size_t zc_end = std::min(zc + kNnZChunk, z_end);
    const std::size_t pairs = (zc_end - zc) / 2;
    const bool odd = ((zc_end - zc) & 1) != 0;

    // Broadcast-ready (a[z0] | a[z1] << 8) pairs for the tile rows.
    std::uint16_t apair[R][kNnZChunk / 2];
    for (std::size_t r = 0; r < R; ++r) {
      const std::uint8_t* ar = a.data + (i + r) * a.cols + zc;
      for (std::size_t p = 0; p < pairs; ++p) {
        apair[r][p] = static_cast<std::uint16_t>(
            ar[2 * p] | (static_cast<std::uint16_t>(ar[2 * p + 1]) << 8));
      }
    }

    for (std::size_t j = 0; j < jvec; j += 16) {
      __m256i acc_lo[R], acc_hi[R];
      for (std::size_t r = 0; r < R; ++r) {
        std::int32_t* dst = out + (i + r - i_begin) * n + j;
        acc_lo[r] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst));
        acc_hi[r] =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + 8));
      }
      for (std::size_t p = 0; p < pairs; ++p) {
        std::uint16_t any = 0;
        for (std::size_t r = 0; r < R; ++r) any |= apair[r][p];
        if (any == 0) continue;
        const std::uint8_t* brow0 = b.data + (zc + 2 * p) * bstride;
        const std::uint8_t* brow1 = brow0 + bstride;
        const __m128i b0 = load16_bcodes<BITS>(brow0, j);
        const __m128i b1 = load16_bcodes<BITS>(brow1, j);
        const __m256i inter = _mm256_set_m128i(_mm_unpackhi_epi8(b0, b1),
                                               _mm_unpacklo_epi8(b0, b1));
        for (std::size_t r = 0; r < R; ++r) {
          const __m256i prod = _mm256_maddubs_epi16(
              _mm256_set1_epi16(static_cast<short>(apair[r][p])), inter);
          acc_lo[r] = _mm256_add_epi32(
              acc_lo[r], _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
          acc_hi[r] = _mm256_add_epi32(
              acc_hi[r],
              _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
        }
      }
      if (odd) {
        const std::size_t z = zc_end - 1;
        const std::uint8_t* brow = b.data + z * bstride;
        const __m256i bw = _mm256_cvtepu8_epi16(load16_bcodes<BITS>(brow, j));
        for (std::size_t r = 0; r < R; ++r) {
          const std::int32_t av = a.data[(i + r) * a.cols + z];
          if (av == 0) continue;
          const __m256i prod = _mm256_mullo_epi16(
              _mm256_set1_epi16(static_cast<short>(av)), bw);  // <= 255·63
          acc_lo[r] = _mm256_add_epi32(
              acc_lo[r], _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
          acc_hi[r] = _mm256_add_epi32(
              acc_hi[r],
              _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
        }
      }
      for (std::size_t r = 0; r < R; ++r) {
        std::int32_t* dst = out + (i + r - i_begin) * n + j;
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), acc_lo[r]);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 8), acc_hi[r]);
      }
    }

    // Remaining columns: scalar axpy over this z-chunk.
    if (jvec < n) {
      for (std::size_t z = zc; z < zc_end; ++z) {
        std::int32_t av[R];
        std::int32_t any = 0;
        for (std::size_t r = 0; r < R; ++r) {
          av[r] = a.data[(i + r) * a.cols + z];
          any |= av[r];
        }
        if (any == 0) continue;
        const std::uint8_t* brow = b.data + z * bstride;
        for (std::size_t j = jvec; j < n; ++j) {
          const std::int32_t bv = code_load<BITS>(brow, j);
          for (std::size_t r = 0; r < R; ++r) {
            out[(i + r - i_begin) * n + j] += av[r] * bv;
          }
        }
      }
    }
  }
}

template <int BITS>
__attribute__((target("avx2"))) void int_gemm_nn_rows_avx2(
    const CodeView& a, const CodeView& b, std::size_t i_begin,
    std::size_t i_end, std::size_t z_begin, std::size_t z_end,
    std::int32_t* out) {
  std::size_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    int_gemm_nn_block_avx2<BITS, 4>(a, b, i, i_begin, z_begin, z_end, out);
  }
  switch (i_end - i) {
    case 3:
      int_gemm_nn_block_avx2<BITS, 3>(a, b, i, i_begin, z_begin, z_end, out);
      break;
    case 2:
      int_gemm_nn_block_avx2<BITS, 2>(a, b, i, i_begin, z_begin, z_end, out);
      break;
    case 1:
      int_gemm_nn_block_avx2<BITS, 1>(a, b, i, i_begin, z_begin, z_end, out);
      break;
    default:
      break;
  }
}

// NT band via the u8 x i8 multiply-add idiom. Requires every B code < 64 so
// the adjacent-pair sums of pmaddubsw (<= 2 * 255 * 63 = 32130) fit int16.
// A is the unsigned operand (full 8-bit range allowed). Packed B rows are
// expanded 32 codes at a time; a scalar head first walks the z-range up to a
// byte boundary so every vector load starts byte-aligned.
template <int BITS>
__attribute__((target("avx2"))) void int_gemm_nt_rows_avx2(
    const CodeView& a, const CodeView& b, std::size_t i_begin,
    std::size_t i_end, std::size_t z_begin, std::size_t z_end,
    std::int32_t* out) {
  const std::size_t n = b.rows;
  const std::size_t bstride = row_stride<BITS>(b.cols);
  std::size_t zv_begin = z_begin;
  if constexpr (BITS != 8) {
    const std::size_t misbits = (z_begin * BITS) & 7;
    if (misbits != 0) {
      zv_begin = std::min(z_end, z_begin + (8 - misbits) / BITS);
    }
  }
  const std::size_t zvec = (z_end - zv_begin) & ~static_cast<std::size_t>(31);
  const std::size_t zv_end = zv_begin + zvec;
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::size_t i = i_begin; i < i_end; ++i) {
    const std::uint8_t* pa = a.data + i * a.cols;
    std::int32_t* dst = out + (i - i_begin) * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::uint8_t* pb0 = b.data + j * bstride;
      const std::uint8_t* pb1 = pb0 + bstride;
      const std::uint8_t* pb2 = pb1 + bstride;
      const std::uint8_t* pb3 = pb2 + bstride;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (std::size_t z = zv_begin; z < zv_end; z += 32) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + z));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(av, load32_bcodes<BITS>(pb0, z)),
                      ones));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(av, load32_bcodes<BITS>(pb1, z)),
                      ones));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(av, load32_bcodes<BITS>(pb2, z)),
                      ones));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(av, load32_bcodes<BITS>(pb3, z)),
                      ones));
      }
      // Fold the four accumulators into one lane each.
      const __m256i h01 = _mm256_hadd_epi32(acc0, acc1);
      const __m256i h23 = _mm256_hadd_epi32(acc2, acc3);
      const __m256i h = _mm256_hadd_epi32(h01, h23);
      const __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(h),
                                        _mm256_extracti128_si256(h, 1));
      alignas(16) std::int32_t lanes[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(lanes), sum);
      std::int32_t c0 = lanes[0], c1 = lanes[1], c2 = lanes[2], c3 = lanes[3];
      // Scalar head (alignment) and tail (vector remainder).
      for (std::size_t z = z_begin; z < zv_begin; ++z) {
        const std::int32_t av = pa[z];
        c0 += av * static_cast<std::int32_t>(code_load<BITS>(pb0, z));
        c1 += av * static_cast<std::int32_t>(code_load<BITS>(pb1, z));
        c2 += av * static_cast<std::int32_t>(code_load<BITS>(pb2, z));
        c3 += av * static_cast<std::int32_t>(code_load<BITS>(pb3, z));
      }
      for (std::size_t z = zv_end; z < z_end; ++z) {
        const std::int32_t av = pa[z];
        c0 += av * static_cast<std::int32_t>(code_load<BITS>(pb0, z));
        c1 += av * static_cast<std::int32_t>(code_load<BITS>(pb1, z));
        c2 += av * static_cast<std::int32_t>(code_load<BITS>(pb2, z));
        c3 += av * static_cast<std::int32_t>(code_load<BITS>(pb3, z));
      }
      dst[j] += c0;
      dst[j + 1] += c1;
      dst[j + 2] += c2;
      dst[j + 3] += c3;
    }
    for (; j < n; ++j) {
      dst[j] += int_dot_nt(a, b, i, j, z_begin, z_end);
    }
  }
}

#endif  // HACK_X86_SIMD

}  // namespace

void int_gemm_force_portable(bool on) {
  g_force_portable.store(on, std::memory_order_relaxed);
}

std::int32_t int_dot_nt(const CodeView& a, const CodeView& b, std::size_t i,
                        std::size_t j, std::size_t z_begin, std::size_t z_end) {
  HACK_CHECK(a.cols == b.cols, "NT inner dim mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  std::int32_t acc = 0;
  if (a.bits == 8 && b.bits == 8) {
    const std::uint8_t* pa = a.data + i * a.cols;
    const std::uint8_t* pb = b.data + j * b.cols;
    for (std::size_t z = z_begin; z < z_end; ++z) {
      acc +=
          static_cast<std::int32_t>(pa[z]) * static_cast<std::int32_t>(pb[z]);
    }
    return acc;
  }
  for (std::size_t z = z_begin; z < z_end; ++z) {
    acc += static_cast<std::int32_t>(a.at(i, z)) *
           static_cast<std::int32_t>(b.at(j, z));
  }
  return acc;
}

void int_gemm_nn_rows(const CodeView& a, const CodeView& b,
                      std::size_t i_begin, std::size_t i_end,
                      std::size_t z_begin, std::size_t z_end,
                      std::int32_t* out, int b_bits,
                      std::size_t b_row_offset) {
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  HACK_CHECK(b_row_offset + z_end <= b.rows,
             "B row range " << b_row_offset << "+" << z_end << " out of "
                            << b.rows);
  HACK_CHECK(i_begin <= i_end && i_end <= a.rows, "bad row band");
  HACK_CHECK(a.bits == 8, "A operand must use byte code storage");
  HACK_CHECK(b.bits == 8 || b.bits == 4 || b.bits == 2,
             "unsupported B storage width " << b.bits);
  // The kernels only ever index B at row granularity, so a KV-tile offset is
  // a plain row-shifted view (rows are byte-padded, so the shift is exact
  // for packed storage too).
  const CodeView bv{b.row_ptr(b_row_offset), b.rows - b_row_offset, b.cols,
                    b.bits};
#ifdef HACK_X86_SIMD
  // Packed storage bounds code values by its width, so it is always
  // pmaddubsw-safe; byte storage needs the caller's value-width promise.
  const bool simd_safe = bv.bits != 8 || (b_bits >= 1 && b_bits <= 6);
  if (simd_safe && cpu_has_avx2() && !force_portable()) {
    switch (bv.bits) {
      case 8:
        int_gemm_nn_rows_avx2<8>(a, bv, i_begin, i_end, z_begin, z_end, out);
        return;
      case 4:
        int_gemm_nn_rows_avx2<4>(a, bv, i_begin, i_end, z_begin, z_end, out);
        return;
      case 2:
        int_gemm_nn_rows_avx2<2>(a, bv, i_begin, i_end, z_begin, z_end, out);
        return;
    }
  }
#else
  (void)b_bits;
#endif
  switch (bv.bits) {
    case 4:
      int_gemm_nn_rows_portable<4>(a, bv, i_begin, i_end, z_begin, z_end, out);
      break;
    case 2:
      int_gemm_nn_rows_portable<2>(a, bv, i_begin, i_end, z_begin, z_end, out);
      break;
    default:
      int_gemm_nn_rows_portable<8>(a, bv, i_begin, i_end, z_begin, z_end, out);
      break;
  }
}

void int_gemm_nt_rows(const CodeView& a, const CodeView& b,
                      std::size_t i_begin, std::size_t i_end,
                      std::size_t z_begin, std::size_t z_end,
                      std::int32_t* out, int b_bits, std::size_t j_begin,
                      std::size_t j_end) {
  if (j_end == kIntGemmFull) j_end = b.rows;
  HACK_CHECK(a.cols == b.cols, "NT inner dim mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  HACK_CHECK(i_begin <= i_end && i_end <= a.rows, "bad row band");
  HACK_CHECK(j_begin <= j_end && j_end <= b.rows, "bad B row range");
  HACK_CHECK(a.bits == 8, "A operand must use byte code storage");
  HACK_CHECK(b.bits == 8 || b.bits == 4 || b.bits == 2,
             "unsupported B storage width " << b.bits);
  // Output columns [j_begin, j_end) come from the row-shifted view of B.
  const CodeView bv{b.row_ptr(j_begin), j_end - j_begin, b.cols, b.bits};
#ifdef HACK_X86_SIMD
  const bool simd_safe = bv.bits != 8 || (b_bits >= 1 && b_bits <= 6);
  if (simd_safe && cpu_has_avx2() && !force_portable()) {
    switch (bv.bits) {
      case 8:
        int_gemm_nt_rows_avx2<8>(a, bv, i_begin, i_end, z_begin, z_end, out);
        return;
      case 4:
        int_gemm_nt_rows_avx2<4>(a, bv, i_begin, i_end, z_begin, z_end, out);
        return;
      case 2:
        int_gemm_nt_rows_avx2<2>(a, bv, i_begin, i_end, z_begin, z_end, out);
        return;
    }
  }
#else
  (void)b_bits;
#endif
  switch (bv.bits) {
    case 4:
      int_gemm_nt_rows_portable<4>(a, bv, i_begin, i_end, z_begin, z_end, out);
      break;
    case 2:
      int_gemm_nt_rows_portable<2>(a, bv, i_begin, i_end, z_begin, z_end, out);
      break;
    default:
      int_gemm_nt_rows_portable<8>(a, bv, i_begin, i_end, z_begin, z_end, out);
      break;
  }
}

void int_gemm_nn_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out, int b_bits) {
  HACK_CHECK(a.cols == b.rows, "NN shape mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  HACK_CHECK(out.size() == a.rows * b.cols, "output size mismatch");
  int_gemm_nn_rows(a, b, 0, a.rows, z_begin, z_end, out.data(), b_bits);
}

void int_gemm_nt_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out, int b_bits) {
  HACK_CHECK(a.cols == b.cols, "NT inner dim mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  HACK_CHECK(out.size() == a.rows * b.rows, "output size mismatch");
  int_gemm_nt_rows(a, b, 0, a.rows, z_begin, z_end, out.data(), b_bits);
}

}  // namespace hack
