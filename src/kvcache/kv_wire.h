// Versioned KV wire format — what a prefill instance ships to decode.
//
// The paper's disaggregated flow (§2, §6) transfers the *quantized* KV cache
// between workers: the decode side attends homomorphically on the very codes
// that crossed the wire, never dequantizing or requantizing them. This module
// is that wire: it serializes every transformer layer's HACK KV state — the
// packed code planes, the FP16 (min, scale) metadata, the SE partition sums,
// the RQE FP16 tail of V, and each KV head's RNG stream position — into one
// contiguous versioned blob, and rehydrates it into a fresh decode-side state
// that continues generation bit-identically to the single-node engine
// (pinned in tests/test_kv_wire.cpp; contract in docs/disaggregation.md).
//
// Layout (all integers little-endian):
//
//   header   magic "HKVW" u32 · version u32 · layers u32 · kv_heads u32 ·
//            query_heads u32 · d_head u32 · pi u32 ·
//            q_bits u8 · kv_bits u8 · flags u8 (bit0 SE, bit1 RQE,
//            bit2 stochastic rounding) · reserved u8 ·
//            tokens u64 · payload_bytes u64
//   body     layers × kv_heads head records, layer-major:
//     rng    4 × u64                      xoshiro256** state after prefill
//     K      packed codes (kv_bits × tokens·d_head) ·
//            mins, scales (binary16 × tokens·(d_head/Π)) ·
//            [SE] sums (u16 × tokens·(d_head/Π))
//     V      v_q_rows u64 (multiple of Π) ·
//            packed codes (kv_bits × v_q_rows·d_head) ·
//            mins, scales (binary16 × d_head·(v_q_rows/Π)) ·
//            [SE] sums (u16 × d_head·(v_q_rows/Π))
//     tail   kind u8 (0 none · 1 FP16 rows, RQE on · 2 ragged quantized
//            group, RQE off) · rows u64 · payload (binary16 × rows·d_head,
//            or packed codes + per-column binary16 (min, scale))
//
// Version 2 adds integrity framing so a corrupted or truncated blob is a
// *typed error* at the receiver, never UB:
//
//   header   as v1, then header_crc u32 — CRC32C over the preceding bytes
//   record   each (layer × KV head) record is preceded by
//            record_bytes u64 · record_crc u32; the CRC covers the record
//            payload, which is only *parsed* after the checksum matches.
//
// A v2 reader still accepts v1 blobs (PR 5's bytes) with the CRC checks
// skipped — the compatibility path is pinned in tests/test_kv_wire.cpp.
// Deserialization failures throw KvWireError with a precise KvWireErrorCode
// (bad magic / version / geometry / CRC / truncation / malformed section);
// the disagg recovery layer (serving/disagg.h) catches kBadCrc to drive
// full-blob retransmission.
//
// Version 3 is the *delta* format — a mid-decode checkpoint. It carries only
// what changed since a base sequence position (the blob a prefill worker
// already shipped): the K rows and whole-Π V partitions appended past the
// base, the entire current V tail (tails mutate in place, so deltas replace
// them), each KV head's current RNG stream words, and the decoded-token
// suffix that produced the new entries. K appends are contiguous in the
// row-major store; V metadata is column-outer, so the delta gathers each
// column's new groups and apply_kv_delta re-interleaves them. Layout:
//
//   header   as v1 (version 3, tokens = total at the checkpoint), then
//            base_tokens u64 · header_crc u32 (CRC32C over all prior bytes)
//   suffix   one CRC-framed record: count u64 · next_token u32 ·
//            count × token u32 — the greedy tokens decoded since the base,
//            plus the already-computed next input token
//   body     layers × kv_heads CRC-framed delta records, layer-major:
//     rng    4 × u64                      current stream words (replace)
//     K      packed codes, mins/scales, [SE] sums for rows [base, tokens)
//     V      new_v_rows u64 (multiple of Π) · packed codes ·
//            per-column gathered mins/scales ([SE] sums) of the new groups
//     tail   the full current tail, exactly as v1/v2 encode it (replace)
//
// apply_kv_delta rehydrates a state currently holding exactly base_tokens
// into the checkpointed state, bit-identical to a full-blob restore of the
// same session (pinned in tests/test_kv_wire.cpp) — so a decode replica can
// resume generation from base blob + latest delta without re-prefilling.
//
// With SE off the sums are not transmitted (the decode side recomputes them
// per iteration, exactly like the paper's ablation); rehydration rebuilds the
// bookkeeping caches from the codes, which is bit-identical. The blob rides
// the netsim NCCL-style pipelined transfer in `kv_wire_transfer_chunks`-sized
// chunks (serving/disagg.h drives that end to end).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "attention/layer_attention.h"
#include "base/check.h"

namespace hack {

class TinyModelSession;

inline constexpr std::uint32_t kKvWireMagic = 0x57564B48u;  // "HKVW"
inline constexpr std::uint32_t kKvWireVersion = 2u;
// PR 5's CRC-less format; the reader keeps accepting it (writers can emit it
// through serialize_kv_wire's `version` parameter for compatibility tests).
inline constexpr std::uint32_t kKvWireVersionLegacy = 1u;
// The incremental-checkpoint format: only entries appended since a base
// position. Written by serialize_kv_delta, consumed by apply_kv_delta;
// deserialize_kv_wire rejects it with a typed kBadVersion error.
inline constexpr std::uint32_t kKvWireVersionDelta = 3u;

// Why a wire-blob deserialization failed. Every failure mode a corrupted,
// truncated, or foreign blob can produce maps to exactly one code — the
// corruption sweep in tests/test_kv_wire.cpp pins that no input reaches
// undefined behavior or an untyped assert.
enum class KvWireErrorCode {
  kBadMagic,      // not a HACK KV wire blob
  kBadVersion,    // version field is not v1/v2/v3, or a delta blob reached
                  // the full-restore path (and vice versa)
  kBadGeometry,   // header geometry/config disagrees with the target states
  kBadCrc,        // header or record checksum mismatch (v2 only)
  kTruncated,     // blob shorter than its framing claims
  kTrailingBytes, // blob longer than its framing claims
  kBadSection,    // a section field violates a format invariant
};

const char* kv_wire_error_name(KvWireErrorCode code);

// Typed wire failure. Derives from CheckError so pre-v2 callers that caught
// the generic error keep working; new callers branch on code() — the disagg
// retry policy retransmits on kBadCrc/kTruncated and gives up on the rest.
class KvWireError : public CheckError {
 public:
  KvWireError(KvWireErrorCode code, const std::string& what)
      : CheckError(what), code_(code) {}
  KvWireErrorCode code() const { return code_; }

 private:
  KvWireErrorCode code_;
};

// Byte accounting of one serialized blob, by section kind. `framing` is the
// header plus the per-record length/kind fields — the format's own overhead.
struct KvWireSections {
  std::size_t framing = 0;
  std::size_t rng_streams = 0;
  std::size_t packed_codes = 0;
  std::size_t metadata = 0;   // FP16 (min, scale) pairs
  std::size_t sums = 0;       // SE partition sums
  std::size_t fp16_tail = 0;  // RQE FP16 tail rows of V

  std::size_t total() const {
    return framing + rng_streams + packed_codes + metadata + sums + fp16_tail;
  }
};

// Parsed header of a blob (validated magic/version/length).
struct KvWireInfo {
  std::uint32_t version = 0;
  std::size_t layers = 0;
  std::size_t kv_heads = 0;
  std::size_t query_heads = 0;
  std::size_t d_head = 0;
  std::size_t pi = 0;
  int q_bits = 0;
  int kv_bits = 0;
  bool summation_elimination = false;
  bool requant_elimination = false;
  bool stochastic_rounding = false;
  std::uint64_t tokens = 0;
  std::uint64_t payload_bytes = 0;
  // v3 only: the sequence position the delta applies at (0 for v1/v2).
  std::uint64_t base_tokens = 0;
  std::size_t header_bytes = 0;  // 48 (v1), 52 (v2, incl. header_crc), or
                                 // 60 (v3, incl. base_tokens + header_crc)
};

// Serializes the given layers' KV states (one HackLayerKvState per
// transformer layer, all sharing one config and token count) into a wire
// blob. `sections` (optional) receives the byte accounting. `version` picks
// the wire format: v2 (default, CRC-framed) or v1 (PR 5's CRC-less bytes,
// kept writable so the compatibility read path stays testable).
std::vector<std::uint8_t> serialize_kv_wire(
    std::span<HackLayerKvState* const> layers,
    KvWireSections* sections = nullptr,
    std::uint32_t version = kKvWireVersion);

// Validates and parses the fixed header — including the v2 header CRC.
// Throws KvWireError on a foreign, corrupted, or truncated blob.
KvWireInfo parse_kv_wire_header(std::span<const std::uint8_t> blob);

// Rehydrates `layers` (fresh, zero-token states whose config and geometry
// must match the header) from a blob. Codes, metadata, sums, tails, and RNG
// stream positions land exactly as shipped. Every record's CRC is verified
// (v2) before its bytes are interpreted; any corruption or truncation throws
// KvWireError with the matching code.
void deserialize_kv_wire(std::span<const std::uint8_t> blob,
                         std::span<HackLayerKvState* const> layers);

// Walks every CRC frame of a v2/v3 blob — header and records — without
// rehydrating anything. The checkpoint store's admission gate: a delta whose
// bytes were corrupted in flight is rejected here (KvWireError) instead of
// poisoning the store and failing the eventual resume.
void verify_kv_wire(std::span<const std::uint8_t> blob);

// The decoded-token suffix a delta checkpoint carries alongside the KV
// entries: the greedy tokens generated since the base position (exactly
// tokens − base_tokens of them — each decoded token appended one KV row) and
// the already-computed next input token, so a resuming replica continues the
// decode loop mid-stride, bit-identically.
struct KvDeltaSuffix {
  std::vector<int> generated;
  int next_token = -1;
};

// Serializes a wire v3 delta of `layers` (currently at some tokens >
// base_tokens) against the base position — only the KV entries appended past
// `base_tokens`, plus RNG streams, the full current V tail, and `suffix`.
std::vector<std::uint8_t> serialize_kv_delta(
    std::span<HackLayerKvState* const> layers, std::uint64_t base_tokens,
    const KvDeltaSuffix& suffix, KvWireSections* sections = nullptr);

// Applies a v3 delta onto `layers`, which must hold exactly the blob's
// base_tokens (i.e. be a rehydrated copy of the base blob). After the call
// the states are bit-identical to the checkpointed originals — same codes,
// metadata, sums, tails, and RNG words a full-blob restore would produce.
// Returns the decoded-token suffix. Throws KvWireError on any mismatch.
KvDeltaSuffix apply_kv_delta(std::span<const std::uint8_t> blob,
                             std::span<HackLayerKvState* const> layers);

// Session-level wrappers: serialize every layer of a (HACK layer backend)
// session after prefill, or rehydrate a fresh session — including its
// timeline position — so decoding continues where the prefill worker stopped.
// These are also the tiered KV manager's swap entry points
// (kvcache/tier_manager.h): eviction serializes a sequence to the compressed
// far tier and resume rehydrates it, with KvWireSections giving the
// per-section byte accounting the tier's swap counters report.
std::vector<std::uint8_t> serialize_session_kv(
    TinyModelSession& session, KvWireSections* sections = nullptr,
    std::uint32_t version = kKvWireVersion);
void deserialize_session_kv(std::span<const std::uint8_t> blob,
                            TinyModelSession& session);

// Delta wrappers: serialize a checkpoint of a mid-decode session, or apply
// one onto a session previously rehydrated from the base blob (its position
// advances to the checkpointed token count).
std::vector<std::uint8_t> serialize_session_kv_delta(
    TinyModelSession& session, std::uint64_t base_tokens,
    const KvDeltaSuffix& suffix, KvWireSections* sections = nullptr);
KvDeltaSuffix apply_session_kv_delta(std::span<const std::uint8_t> blob,
                                     TinyModelSession& session);

// How many pipeline chunks a blob of `blob_bytes` rides the netsim NCCL-style
// transfer in: ceil(blob/chunk), clamped to [1, 64] so tiny blobs don't pay
// per-chunk latency and huge ones don't book unbounded events.
int kv_wire_transfer_chunks(std::size_t blob_bytes, std::size_t chunk_bytes);

}  // namespace hack
