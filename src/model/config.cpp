#include "model/config.h"

#include "base/check.h"

namespace hack {

const std::vector<ModelConfig>& model_zoo() {
  static const std::vector<ModelConfig> zoo = {
      {.name = "Mistral-v0.3 7B",
       .letter = "M",
       .layers = 32,
       .hidden = 4096,
       .heads = 32,
       .kv_heads = 8,
       .d_head = 128,
       .intermediate = 14336,
       .vocab = 32768,
       .params = 7.25e9,
       .max_context = 32768},
      {.name = "Phi-3 14B",
       .letter = "P",
       .layers = 40,
       .hidden = 5120,
       .heads = 40,
       .kv_heads = 10,
       .d_head = 128,
       .intermediate = 17920,
       .vocab = 32064,
       .params = 14.0e9,
       .max_context = 131072},
      {.name = "Yi 34B",
       .letter = "Y",
       .layers = 60,
       .hidden = 7168,
       .heads = 56,
       .kv_heads = 8,
       .d_head = 128,
       .intermediate = 20480,
       .vocab = 64000,
       .params = 34.4e9,
       .max_context = 200000},
      {.name = "Llama-3.1 70B",
       .letter = "L",
       .layers = 80,
       .hidden = 8192,
       .heads = 64,
       .kv_heads = 8,
       .d_head = 128,
       .intermediate = 28672,
       .vocab = 128256,
       .params = 70.6e9,
       .max_context = 131072},
      {.name = "Falcon 180B",
       .letter = "F",
       .layers = 80,
       .hidden = 14848,
       .heads = 232,
       .kv_heads = 8,
       .d_head = 64,
       .intermediate = 59392,
       .vocab = 65024,
       .params = 180.0e9,
       // The paper notes Falcon-180B's 2K context window limitation (§2.1).
       .max_context = 2048},
  };
  return zoo;
}

const ModelConfig& model_by_letter(const std::string& letter) {
  for (const ModelConfig& m : model_zoo()) {
    if (m.letter == letter) return m;
  }
  HACK_CHECK(false, "unknown model letter: " << letter);
  return model_zoo().front();
}

ParallelismPlan parallelism_for(const ModelConfig& model, GpuFamily family) {
  // Table 3. Columns: {A10G, L4}, {V100, T4}, {A100}.
  struct Row {
    const char* letter;
    ParallelismPlan a10g_l4;
    ParallelismPlan v100_t4;
    ParallelismPlan a100;
  };
  static const Row rows[] = {
      {"M", {4, 1}, {4, 1}, {1, 1}},
      {"P", {2, 2}, {2, 2}, {1, 1}},
      {"Y", {4, 2}, {4, 2}, {4, 1}},
      {"L", {4, 2}, {4, 4}, {4, 1}},
      {"F", {4, 5}, {4, 8}, {4, 2}},
  };
  for (const Row& row : rows) {
    if (model.letter == row.letter) {
      switch (family) {
        case GpuFamily::kA10gL4:
          return row.a10g_l4;
        case GpuFamily::kV100T4:
          return row.v100_t4;
        case GpuFamily::kA100:
          return row.a100;
      }
    }
  }
  HACK_CHECK(false, "no parallelism plan for model " << model.letter);
  return {};
}

}  // namespace hack
