// HACK attention: self-attention computed directly on quantized KV data.
//
// Reproduces the paper's attn_prefill / attn_decode kernels (§5.3, §6) on the
// CPU: Q is quantized to 8 bits, K and V to 2 bits (configurable), the
// Q·Kᵀ and P·V matmuls run through homomorphic quantization (Eq. 4), and KV
// data is never dequantized. Two optimizations are modeled faithfully and can
// be toggled for the ablation study (§7.4):
//   - SE  (summation elimination): Σ b' code sums are cached at quantization
//     time instead of recomputed each decode iteration.
//   - RQE (requantization elimination): the trailing, not-yet-full partition
//     of V stays in FP16 and is multiplied un-quantized; without it, the last
//     block is requantized from its own dequantized values every iteration,
//     accumulating error (Fig. 8).
#pragma once

#include <cstdint>

#include "attention/reference.h"
#include "base/rng.h"
#include "core/hq_matmul.h"
#include "core/sum_cache.h"
#include "quant/quantizer.h"
#include "tensor/matrix.h"

namespace hack {

struct HackAttentionConfig {
  std::size_t pi = 64;  // quantization partition size Π (multiple of 16)
  int q_bits = 8;       // Q and P precision (§5.1: 8-bit for accuracy)
  int kv_bits = 2;      // K and V precision (§5.1: 2-bit for compression)
  Rounding rounding = Rounding::kStochastic;
  bool summation_elimination = true;
  bool requant_elimination = true;
  // HQ-GEMM parallelism for the prefill Q·Kᵀ and P·V matmuls: 0 = auto (the
  // shared ThreadPool, sized by HACK_NUM_THREADS / the hardware), 1 = serial,
  // N = N row bands. Decode's single-row matmuls always take the serial GEMV
  // fast path.
  int threads = 0;
  // KV-tile width (tokens) of the streaming-softmax prefill: the engine walks
  // the key dimension in tiles of this many tokens with an online softmax, so
  // per-head score memory is O(q_rows · tile) instead of O(L²). 0 = auto: the
  // HACK_ATTN_TILE_TOKENS environment variable when set, else an L2-aware
  // heuristic (see attention_tile_tokens in attention/layer_attention.h).
  // Single-row (decode) launches materialize one score row and ignore this.
  std::size_t tile_tokens = 0;
};

// Work counters accumulated across kernel invocations; benchmarks and the
// ablation study read these.
struct HackAttnStats {
  std::int64_t quantized_values = 0;   // values passed through the quantizer
  std::int64_t int_macs = 0;           // integer GEMM multiply-accumulates
  std::int64_t approx_flops = 0;       // Eq. (4) correction flops
  std::int64_t sum_recompute_flops = 0;  // Σ b' adds paid when SE is off
  std::int64_t fp16_tail_macs = 0;     // FP16 MACs on the last block of V
  std::int64_t requant_events = 0;     // last-block requantizations (RQE off)
  std::int64_t requant_values = 0;     // values requantized in those events
};

// Per-head quantized KV state: the decode instance's KV cache content plus
// everything the prefill instance ships over the wire (codes, m, s, sums,
// FP16 tail).
class HackKvState {
 public:
  HackKvState(std::size_t d_head, const HackAttentionConfig& config);

  const HackAttentionConfig& config() const { return config_; }
  std::size_t d_head() const { return d_head_; }
  std::size_t tokens() const { return tokens_; }

  // Rows of V currently held in the packed quantized cache (a multiple of Π).
  std::size_t quantized_v_rows() const;

  // Appends new tokens' K and V rows ([n, d_head] each); used both for the
  // whole prompt in prefill and one row at a time in decode.
  void append_tokens(const Matrix& k_new, const Matrix& v_new, Rng& rng,
                     HackAttnStats* stats = nullptr);

  // Memory accounting (bytes), matching the paper's categories in §7.4.
  std::size_t packed_kv_bytes() const;   // packed codes + FP16 (m, s) metadata
  // Bytes the code planes actually occupy in memory (codes.size(), not the
  // modeled packed size). With packed-resident storage this matches
  // packed_kv_bytes' code term; it exists so benchmarks report the real
  // footprint rather than a formula.
  std::size_t resident_code_bytes() const;
  std::size_t sum_cache_bytes() const;   // SE sums (0 when SE disabled)
  std::size_t fp16_tail_bytes() const;   // RQE FP16 last block (0 when off)
  std::size_t wire_bytes() const;        // what prefill transmits to decode

  // Read access for tests and the batched attention engine.
  bool k_ready() const { return k_init_; }
  const QuantizedMatrix& k() const { return k_; }
  const QuantizedMatrix& v_quantized() const { return v_q_; }
  const Matrix& v_tail_fp16() const { return v_tail_fp16_; }
  const SumCache& k_sums() const { return k_sums_; }
  const SumCache& v_sums() const { return v_sums_; }
  bool v_quantized_ready() const { return v_init_; }
  bool v_tail_quantized_ready() const { return v_tail_q_init_; }
  const QuantizedMatrix& v_tail_quantized() const { return v_tail_q_; }

  // RQE-off view of V: the full-partition store with the ragged quantized
  // tail group spliced on, covering every cached token. The tail violates the
  // whole-group invariant of append_inner_groups, so the splice is done here:
  // codes are row-contiguous, metadata gains one group.
  QuantizedMatrix v_quantized_all() const;

  // Replaces the state's contents with rehydrated wire-format sections
  // (kvcache/kv_wire.h) — the decode-instance half of the disaggregated
  // handoff. The codes, metadata, SE sums, and FP16 tail land exactly as the
  // prefill instance shipped them; no value is requantized. Shapes are
  // validated against this state's config. `v_tail_q_present` distinguishes
  // an absent RQE-off tail from an empty one (tokens a multiple of Π).
  void restore(std::size_t tokens, QuantizedMatrix k, SumCache k_sums,
               QuantizedMatrix v_q, SumCache v_sums, Matrix v_tail_fp16,
               QuantizedMatrix v_tail_q, bool v_tail_q_present);

 private:
  // RQE-off path: folds `rows` new V rows into the ragged quantized tail by
  // dequantize -> append -> requantize (the expensive path of Fig. 8).
  void requantize_tail(const Matrix& rows, Rng& rng, HackAttnStats* stats);

  // Moves full partitions out of the FP16/requantized tail into v_q_.
  void promote_full_partitions(Rng& rng, HackAttnStats* stats);

  HackAttentionConfig config_;
  std::size_t d_head_;
  std::size_t tokens_ = 0;

  QuantizedMatrix k_;    // row-axis over d_head, one token per row
  SumCache k_sums_;
  bool k_init_ = false;

  QuantizedMatrix v_q_;  // col-axis over the sequence dim, whole-Π groups
  SumCache v_sums_;
  bool v_init_ = false;

  Matrix v_tail_fp16_;       // RQE on: exact FP16 rows, < Π of them
  QuantizedMatrix v_tail_q_; // RQE off: one ragged quantized group
  bool v_tail_q_init_ = false;
};

// Attention over the quantized state. Handles both prefill (q has L_Q rows,
// key_offset 0) and decode (single-row q, key_offset = tokens - 1). The
// state must already contain the K/V rows for all tokens q attends to.
// Implemented as a single-task wrapper over the batched multi-head engine in
// attention/layer_attention.h: it forks the Q/P quantizer sub-streams from
// `rng` in the same order the layer engine does, so a serial loop of
// per-head calls is bit-identical to one batched layer call.
Matrix hack_attention(const Matrix& q, HackKvState& state,
                      const AttentionOptions& options, Rng& rng,
                      HackAttnStats* stats = nullptr);

// Convenience wrapper for the fused prefill kernel: ingests the prompt's
// K/V into a fresh state and returns the attention output for all rows.
Matrix hack_attn_prefill(const Matrix& q, const Matrix& k, const Matrix& v,
                         HackKvState& state, Rng& rng,
                         HackAttnStats* stats = nullptr);

// Convenience wrapper for one decode step: appends the new token's K/V and
// returns the single-row attention output.
Matrix hack_attn_decode(const Matrix& q_row, const Matrix& k_row,
                        const Matrix& v_row, HackKvState& state, Rng& rng,
                        HackAttnStats* stats = nullptr);

}  // namespace hack
