#include "workload/corpus.h"

#include "base/check.h"

namespace hack {

SyntheticCorpus::SyntheticCorpus(CorpusStyle style, std::uint64_t seed)
    : style_(style), seed_(seed) {
  HACK_CHECK(style.vocab >= 16, "vocab too small");
  Rng rng(seed);
  motifs_.resize(style.motif_count);
  for (auto& motif : motifs_) {
    motif.resize(style.motif_len);
    for (int& tok : motif) {
      tok = static_cast<int>(rng.next_below(style.vocab));
    }
  }
  successors_.resize(style.vocab);
  for (auto& next : successors_) {
    next.resize(4);
    for (int& tok : next) {
      tok = static_cast<int>(rng.next_below(style.vocab));
    }
  }
}

std::vector<int> SyntheticCorpus::prompt(std::size_t index,
                                         std::size_t length) const {
  HACK_CHECK(length > 0, "empty prompt");
  Rng rng(seed_ ^ (0x5851f42d4c957f2dULL * (index + 1)));
  std::vector<int> tokens;
  tokens.reserve(length);
  int current = static_cast<int>(rng.next_below(style_.vocab));
  tokens.push_back(current);
  while (tokens.size() < length) {
    if (rng.next_double() < style_.motif_probability) {
      const auto& motif = motifs_[rng.next_below(motifs_.size())];
      for (const int tok : motif) {
        if (tokens.size() >= length) break;
        tokens.push_back(tok);
      }
      current = tokens.back();
    } else {
      const auto& next = successors_[static_cast<std::size_t>(current)];
      current = next[rng.next_below(next.size())];
      tokens.push_back(current);
    }
  }
  return tokens;
}

}  // namespace hack
