// End-to-end cluster simulator tests: conservation, determinism, and the
// paper's directional results (method orderings, bottleneck shifts).
#include <gtest/gtest.h>

#include "base/check.h"
#include "cluster/simulator.h"

namespace hack {
namespace {

ClusterConfig quick_config(Method method, const std::string& dataset,
                           const std::string& gpu = "A10G", int requests = 24) {
  ClusterConfig c = standard_cluster(gpu, "L", dataset, method);
  c.num_requests = requests;
  c.seed = 7;
  return c;
}

TEST(Simulator, AllRequestsCompleteExactlyOnce) {
  const SimSummary s = run_cluster_sim(quick_config(Method::kBaseline, "IMDb"));
  ASSERT_EQ(s.records.size(), 24u);
  for (const RequestRecord& r : s.records) {
    EXPECT_GT(r.completion, r.arrival);
    EXPECT_GT(r.prefill_s, 0.0);
    EXPECT_GT(r.comm_s, 0.0);
    EXPECT_GT(r.decode_total_s, 0.0);
  }
}

TEST(Simulator, DeterministicForSeed) {
  const SimSummary a = run_cluster_sim(quick_config(Method::kHack, "arXiv"));
  const SimSummary b = run_cluster_sim(quick_config(Method::kHack, "arXiv"));
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_DOUBLE_EQ(a.avg_jct_s, b.avg_jct_s);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].completion, b.records[i].completion);
  }
}

TEST(Simulator, JctComponentsAreConsistent) {
  const SimSummary s =
      run_cluster_sim(quick_config(Method::kCacheGen, "Cocktail"));
  for (const RequestRecord& r : s.records) {
    const double accounted = r.prefill_wait_s + r.prefill_s + r.quant_s +
                             r.swap_wait_s + r.comm_s + r.decode_total_s;
    EXPECT_NEAR(accounted, r.jct(), 1e-6 * r.jct());
    // Component buckets live inside the decode phase.
    EXPECT_LE(r.dequant_s + r.approx_s, r.decode_total_s + 1e-9);
  }
}

TEST(Simulator, HackBeatsCodecsBeatBaseline) {
  // Fig. 9's ordering on a long-sequence dataset.
  const double base =
      run_cluster_sim(quick_config(Method::kBaseline, "Cocktail")).avg_jct_s;
  const double cg =
      run_cluster_sim(quick_config(Method::kCacheGen, "Cocktail")).avg_jct_s;
  const double kvq =
      run_cluster_sim(quick_config(Method::kKvQuant, "Cocktail")).avg_jct_s;
  const double hck =
      run_cluster_sim(quick_config(Method::kHack, "Cocktail")).avg_jct_s;
  EXPECT_LT(cg, base);
  EXPECT_LT(kvq, base);
  EXPECT_LT(hck, cg);
  EXPECT_LT(hck, kvq);
}

TEST(Simulator, LongSequencesGainMoreFromHack) {
  // §7.2: arXiv/Cocktail improvements exceed IMDb/HumanEval.
  auto gain = [](const std::string& dataset) {
    const double base =
        run_cluster_sim(quick_config(Method::kBaseline, dataset)).avg_jct_s;
    const double hck =
        run_cluster_sim(quick_config(Method::kHack, dataset)).avg_jct_s;
    return 1.0 - hck / base;
  };
  EXPECT_GT(gain("Cocktail"), gain("IMDb"));
}

TEST(Simulator, DequantRatioMattersForCodecs) {
  // Fig. 2-4: codec methods pay a visible dequantization share; HACK's
  // approximation share is far smaller (§7.2: 17-30% vs 1.5-3%).
  const SimSummary cg =
      run_cluster_sim(quick_config(Method::kCacheGen, "Cocktail"));
  const SimSummary hck =
      run_cluster_sim(quick_config(Method::kHack, "Cocktail"));
  EXPECT_GT(cg.dequant_or_approx_ratio, 0.08);
  EXPECT_LT(hck.dequant_or_approx_ratio, 0.5 * cg.dequant_or_approx_ratio);
}

TEST(Simulator, QuantMethodsCutCommRatio) {
  const SimSummary base =
      run_cluster_sim(quick_config(Method::kBaseline, "Cocktail"));
  const SimSummary hck =
      run_cluster_sim(quick_config(Method::kHack, "Cocktail"));
  EXPECT_LT(hck.mean_comm_s, 0.35 * base.mean_comm_s);
}

TEST(Simulator, PeakMemoryOrdering) {
  // Table 5: baseline >> quantized methods; HACK slightly above codecs.
  const double base =
      run_cluster_sim(quick_config(Method::kBaseline, "Cocktail"))
          .peak_decode_mem_fraction;
  const double cg =
      run_cluster_sim(quick_config(Method::kCacheGen, "Cocktail"))
          .peak_decode_mem_fraction;
  const double hck = run_cluster_sim(quick_config(Method::kHack, "Cocktail"))
                         .peak_decode_mem_fraction;
  EXPECT_GT(base, hck);
  EXPECT_GE(hck, cg - 1e-9);
  EXPECT_LE(base, 1.0);
}

TEST(Simulator, V100SmallestHackVsCodecGain) {
  // Fig. 12: no INT8 on V100 -> HACK's edge over CacheGen shrinks.
  auto hack_vs_cg = [](const std::string& gpu) {
    ClusterConfig cg_cfg = quick_config(Method::kCacheGen, "Cocktail", gpu);
    ClusterConfig hk_cfg = quick_config(Method::kHack, "Cocktail", gpu);
    const double cg = run_cluster_sim(cg_cfg).avg_jct_s;
    const double hk = run_cluster_sim(hk_cfg).avg_jct_s;
    return 1.0 - hk / cg;
  };
  const double gain_v100 = hack_vs_cg("V100");
  const double gain_a10g = hack_vs_cg("A10G");
  EXPECT_LT(gain_v100, gain_a10g);
}

TEST(Simulator, AblationsCostMore) {
  // Fig. 13: disabling SE or RQE raises JCT.
  const double hck =
      run_cluster_sim(quick_config(Method::kHack, "Cocktail")).avg_jct_s;
  const double no_se =
      run_cluster_sim(quick_config(Method::kHackNoSE, "Cocktail")).avg_jct_s;
  const double no_rqe =
      run_cluster_sim(quick_config(Method::kHackNoRQE, "Cocktail")).avg_jct_s;
  EXPECT_GT(no_se, hck);
  EXPECT_GT(no_rqe, hck);
}

TEST(Simulator, PipeliningHidesCommAtLowLoad) {
  ClusterConfig off = quick_config(Method::kBaseline, "Cocktail");
  off.rps = 0.25 * off.rps;
  ClusterConfig on = off;
  on.pipelining = true;
  const SimSummary s_off = run_cluster_sim(off);
  const SimSummary s_on = run_cluster_sim(on);
  EXPECT_LT(s_on.mean_comm_s, s_off.mean_comm_s);
}

TEST(Simulator, HigherLoadRaisesJct) {
  ClusterConfig low = quick_config(Method::kBaseline, "arXiv");
  low.rps *= 0.3;
  ClusterConfig high = quick_config(Method::kBaseline, "arXiv");
  const double jct_low = run_cluster_sim(low).avg_jct_s;
  const double jct_high = run_cluster_sim(high).avg_jct_s;
  EXPECT_GT(jct_high, jct_low);
}

TEST(Simulator, StandardClusterFleetSizes) {
  const ClusterConfig a10g =
      standard_cluster("A10G", "L", "Cocktail", Method::kBaseline);
  // Ten g5 instances = 40 GPUs / (TP4*PP2) = 5 replicas.
  EXPECT_EQ(a10g.prefill_replicas, 5);
  // Two p4de = 16 A100 / TP4 = 4 decode replicas.
  EXPECT_EQ(a10g.decode_replicas, 4);
  EXPECT_GT(a10g.rps, 0.0);

  const ClusterConfig v100 =
      standard_cluster("V100", "L", "Cocktail", Method::kBaseline);
  // Sixteen p3 = 64 GPUs / (TP4*PP4) = 4 replicas, 10 Gbps NIC.
  EXPECT_EQ(v100.prefill_replicas, 4);
  EXPECT_DOUBLE_EQ(v100.prefill_nic_gbps, 10.0);
}

TEST(Simulator, SwapPathActivatesUnderMemoryPressure) {
  // One decode replica whose KV budget fits a single Cocktail request at a
  // time: prefill outpaces decode admission, so KV parks in CPU memory.
  ClusterConfig c = quick_config(Method::kBaseline, "Cocktail", "A10G", 30);
  c.decode_replicas = 1;
  c.activation_reserve_gb = 169.0;  // ~9.8 GB of KV budget (max request fits)
  const SimSummary s = run_cluster_sim(c);
  EXPECT_GT(s.swapped_requests, 0);
  double total_swap_wait = 0.0;
  for (const RequestRecord& r : s.records) total_swap_wait += r.swap_wait_s;
  EXPECT_GT(total_swap_wait, 0.0);
}

}  // namespace
}  // namespace hack
