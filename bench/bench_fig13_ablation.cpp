// Figure 13: ablation study — HACK vs HACK/SE (no summation elimination)
// vs HACK/RQE (no requantization elimination), avg JCT across datasets
// (Llama-3.1 70B, A10G prefill). Paper shapes: SE matters most on long
// sequences (the Σb' recompute scales with L); RQE matters most on short
// sequences (the per-iteration requantization is fixed-size work).
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  const Method methods[] = {Method::kHack, Method::kHackNoSE,
                            Method::kHackNoRQE};
  Table t("Fig 13: ablation avg JCT (s), L + A10G prefill");
  t.header({"dataset", "HACK", "HACK/SE", "HACK/RQE", "SE_penalty",
            "RQE_penalty"});
  for (const std::string& dataset : dataset_names()) {
    double jct[3] = {};
    for (int m = 0; m < 3; ++m) {
      jct[m] =
          run(standard_cluster("A10G", "L", dataset, methods[m])).avg_jct_s;
    }
    t.row({dataset, fmt(jct[0], 1), fmt(jct[1], 1), fmt(jct[2], 1),
           pct(jct[1] / jct[0] - 1.0), pct(jct[2] / jct[0] - 1.0)});
  }
  t.print();
  return 0;
}
