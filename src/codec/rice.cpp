#include "codec/rice.h"

namespace hack {

void rice_encode(BitWriter& writer, std::uint32_t value, int k) {
  const std::uint32_t q = value >> k;
  writer.write_unary(q);
  writer.write_bits(value & ((1u << k) - 1), k);
}

std::uint32_t rice_decode(BitReader& reader, int k) {
  const std::uint32_t q = reader.read_unary();
  const std::uint32_t r = static_cast<std::uint32_t>(reader.read_bits(k));
  return (q << k) | r;
}

std::size_t rice_bit_length(std::uint32_t value, int k) {
  return static_cast<std::size_t>(value >> k) + 1 + static_cast<std::size_t>(k);
}

int rice_best_k(std::span<const std::uint32_t> values, int max_k) {
  int best_k = 0;
  std::size_t best_bits = SIZE_MAX;
  for (int k = 0; k <= max_k; ++k) {
    std::size_t bits = 0;
    for (const std::uint32_t v : values) {
      bits += rice_bit_length(v, k);
      if (bits >= best_bits) break;
    }
    if (bits < best_bits) {
      best_bits = bits;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace hack
