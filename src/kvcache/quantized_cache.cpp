#include "kvcache/quantized_cache.h"

namespace hack {

QuantizedKvCache::QuantizedKvCache(std::size_t layers, std::size_t kv_heads,
                                   std::size_t d_head,
                                   HackAttentionConfig config,
                                   std::size_t gpu_byte_budget)
    : layers_(layers),
      kv_heads_(kv_heads),
      d_head_(d_head),
      config_(config),
      budget_(gpu_byte_budget) {
  HACK_CHECK(layers > 0 && kv_heads > 0, "empty cache geometry");
}

bool QuantizedKvCache::admit(SeqId seq) {
  HACK_CHECK(!gpu_.contains(seq), "sequence " << seq << " already resident");
  if (gpu_bytes_in_use() >= budget_) {
    return false;
  }
  States states;
  states.reserve(layers_ * kv_heads_);
  for (std::size_t i = 0; i < layers_ * kv_heads_; ++i) {
    states.emplace_back(d_head_, config_);
  }
  gpu_.emplace(seq, std::move(states));
  return true;
}

HackKvState& QuantizedKvCache::state(SeqId seq, std::size_t layer,
                                     std::size_t head) {
  const auto it = gpu_.find(seq);
  HACK_CHECK(it != gpu_.end(), "sequence " << seq << " not resident");
  return it->second[index(layer, head)];
}

void QuantizedKvCache::append_tokens(SeqId seq, const std::vector<Matrix>& k,
                                     const std::vector<Matrix>& v, Rng& rng,
                                     HackAttnStats* stats) {
  HACK_CHECK(k.size() == layers_ * kv_heads_ && v.size() == k.size(),
             "append expects one matrix per (layer, head)");
  const auto it = gpu_.find(seq);
  HACK_CHECK(it != gpu_.end(), "sequence " << seq << " not resident");
  for (std::size_t i = 0; i < k.size(); ++i) {
    it->second[i].append_tokens(k[i], v[i], rng, stats);
  }
}

void QuantizedKvCache::drop(SeqId seq) {
  HACK_CHECK(gpu_.erase(seq) == 1, "drop of non-resident sequence " << seq);
}

QuantizedCacheUsage QuantizedKvCache::usage(SeqId seq) const {
  const auto it = gpu_.find(seq);
  HACK_CHECK(it != gpu_.end(), "sequence " << seq << " not resident");
  QuantizedCacheUsage u;
  for (const HackKvState& s : it->second) {
    u.packed_kv_bytes += s.packed_kv_bytes();
    u.sum_cache_bytes += s.sum_cache_bytes();
    u.fp16_tail_bytes += s.fp16_tail_bytes();
  }
  return u;
}

QuantizedCacheUsage QuantizedKvCache::total_usage() const {
  QuantizedCacheUsage total;
  for (const auto& [seq, states] : gpu_) {
    for (const HackKvState& s : states) {
      total.packed_kv_bytes += s.packed_kv_bytes();
      total.sum_cache_bytes += s.sum_cache_bytes();
      total.fp16_tail_bytes += s.fp16_tail_bytes();
    }
  }
  return total;
}

}  // namespace hack
