// Text similarity metrics used by the paper's accuracy evaluation (§7.1):
// ROUGE-1 for summarization-style outputs and Edit Similarity (normalized
// Levenshtein) for code-completion-style outputs.
#pragma once

#include <vector>

namespace hack {

// ROUGE-1 F1 between candidate and reference token sequences: unigram
// overlap (clipped counts), harmonic mean of precision and recall. In [0, 1].
double rouge1_f1(const std::vector<int>& candidate,
                 const std::vector<int>& reference);

// Levenshtein distance (insert/delete/substitute, unit costs).
std::size_t edit_distance(const std::vector<int>& a, const std::vector<int>& b);

// Edit similarity: 1 - distance / max(|a|, |b|). In [0, 1].
double edit_similarity(const std::vector<int>& a, const std::vector<int>& b);

// Exact-prefix match length divided by reference length: how long greedy
// generations agree before first divergence.
double prefix_agreement(const std::vector<int>& candidate,
                        const std::vector<int>& reference);

}  // namespace hack
