#include "attention/layer_attention.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>
#include <utility>

#include "base/thread_pool.h"
#include "core/hq_matmul.h"
#include "tensor/ops.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace hack {
namespace {

void add_hq(HackAttnStats& stats, const HqStats& hq) {
  stats.int_macs += hq.int_macs;
  stats.approx_flops += hq.approx_flops;
  stats.sum_recompute_flops += hq.sum_flops;
}

void add_attn_stats(HackAttnStats& dst, const HackAttnStats& src) {
  dst.quantized_values += src.quantized_values;
  dst.int_macs += src.int_macs;
  dst.approx_flops += src.approx_flops;
  dst.sum_recompute_flops += src.sum_recompute_flops;
  dst.fp16_tail_macs += src.fp16_tail_macs;
  dst.requant_events += src.requant_events;
  dst.requant_values += src.requant_values;
}

// Every task is independent — own output slot, own pre-forked RNG streams —
// so the shared pool fan-out cannot change results.
void for_each_task(std::size_t n, int threads,
                   const std::function<void(std::size_t)>& fn) {
  parallel_for_each_index(n, threads, fn);
}

}  // namespace

namespace {

// ------------------------------------------------------------- flat path
// Single-row (decode) tasks keep the PR 2 pipeline: one materialized score
// row per head through quantize-Q → batched Q·Kᵀ GEMV → softmax →
// quantize-P → batched P·V GEMV → FP16 tail. A decode launch's whole-layer
// score state is heads × lkv cells — KiBs, not the O(heads · L²) that made
// prefill need streaming — so no tiling or chunking applies here, and the
// path stays bit-identical to the pre-tiling engine.
void run_flat_attention(std::span<HeadAttentionTask> tasks,
                        std::span<const std::size_t> lq,
                        std::span<const std::size_t> lkv,
                        std::span<const std::size_t> vq_rows,
                        std::span<const AttentionOptions> opts,
                        std::span<Matrix> outs, HackAttnStats& local,
                        int threads) {
  const std::size_t t_count = tasks.size();

  // --- Quantize Q for every head (step 3 in Fig. 5). The sub-streams were
  // forked before this call, so the head loop parallelizes without
  // reordering any RNG stream.
  std::vector<QuantizedMatrix> qq(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    local.quantized_values += static_cast<std::int64_t>(tasks[t].q->size());
  }
  for_each_task(t_count, threads, [&](std::size_t t) {
    const HackAttentionConfig& cfg = tasks[t].state->config();
    qq[t] = quantize(*tasks[t].q, cfg.q_bits, cfg.pi, QuantAxis::kRow,
                     cfg.rounding, *tasks[t].q_rng,
                     /*allow_ragged_tail=*/false, threads);
  });

  // --- S = Q·Kᵀ for all heads in one (head × row-band) launch.
  std::vector<Matrix> scores(t_count);
  {
    std::vector<HqStats> hq_nt(t_count);
    std::vector<HqGemmTask> gemm(t_count);
    for (std::size_t t = 0; t < t_count; ++t) {
      const HackKvState& st = *tasks[t].state;
      gemm[t] = {&qq[t], &st.k(),
                 st.config().summation_elimination ? &st.k_sums() : nullptr,
                 &scores[t], &hq_nt[t]};
    }
    hq_matmul_nt_batched(gemm, threads);
    for (const HqStats& hq : hq_nt) add_hq(local, hq);
  }
  qq.clear();

  // --- P = softmax(S / √d) (step 4), head-parallel, full precision as on
  // the GPU.
  std::vector<Matrix> p(t_count);
  for_each_task(t_count, threads, [&](std::size_t t) {
    Matrix& s = scores[t];
    const float inv_sqrt_d =
        1.0f / std::sqrt(static_cast<float>(tasks[t].q->cols()));
    for (float& v : s.flat()) v *= inv_sqrt_d;
    p[t] = opts[t].causal ? softmax_rows_causal(s, opts[t].key_offset)
                          : softmax_rows(s);
    s = Matrix();  // scores for this head are dead; cap peak memory
  });

  // --- Quantize P per head. RQE-off heads multiply against the spliced
  // (full + ragged tail) V store, built once per distinct KV head.
  std::vector<QuantizedMatrix> pq(t_count);
  std::vector<const HackKvState*> spliced_owner;
  std::vector<QuantizedMatrix> spliced_v;
  std::vector<std::size_t> spliced_of(t_count, 0);
  for (std::size_t t = 0; t < t_count; ++t) {
    const HackKvState& st = *tasks[t].state;
    if (st.config().requant_elimination) {
      local.quantized_values +=
          vq_rows[t] > 0
              ? static_cast<std::int64_t>(lq[t]) * vq_rows[t]
              : 0;
      continue;
    }
    local.quantized_values += static_cast<std::int64_t>(lq[t]) * lkv[t];
    std::size_t found = spliced_owner.size();
    for (std::size_t s = 0; s < spliced_owner.size(); ++s) {
      if (spliced_owner[s] == &st) {
        found = s;
        break;
      }
    }
    if (found == spliced_owner.size()) {
      spliced_owner.push_back(&st);
      spliced_v.push_back(st.v_quantized_all());
      HACK_CHECK(spliced_v.back().rows == lkv[t],
                 "RQE-off V store out of sync");
    }
    spliced_of[t] = found;
  }
  for_each_task(t_count, threads, [&](std::size_t t) {
    const HackAttentionConfig& cfg = tasks[t].state->config();
    if (cfg.requant_elimination) {
      if (vq_rows[t] > 0) {
        pq[t] = quantize(take_cols(p[t], 0, vq_rows[t]), cfg.q_bits, cfg.pi,
                         QuantAxis::kRow, cfg.rounding, *tasks[t].p_rng,
                         /*allow_ragged_tail=*/false, threads);
      }
    } else {
      pq[t] = quantize(p[t], cfg.q_bits, cfg.pi, QuantAxis::kRow, cfg.rounding,
                       *tasks[t].p_rng, /*allow_ragged_tail=*/true, threads);
    }
  });

  // --- O = P·V for all heads with quantized V rows, one batched launch.
  std::vector<Matrix> oq(t_count);
  {
    std::vector<HqStats> hq_nn(t_count);
    std::vector<HqGemmTask> gemm;
    gemm.reserve(t_count);
    std::vector<std::size_t> gemm_task;
    for (std::size_t t = 0; t < t_count; ++t) {
      const HackKvState& st = *tasks[t].state;
      const HackAttentionConfig& cfg = st.config();
      if (cfg.requant_elimination) {
        if (vq_rows[t] == 0) continue;
        gemm.push_back({&pq[t], &st.v_quantized(),
                        cfg.summation_elimination ? &st.v_sums() : nullptr,
                        &oq[t], &hq_nn[t]});
      } else {
        gemm.push_back(
            {&pq[t], &spliced_v[spliced_of[t]], nullptr, &oq[t], &hq_nn[t]});
      }
      gemm_task.push_back(t);
    }
    hq_matmul_batched(gemm, threads);
    for (const std::size_t t : gemm_task) add_hq(local, hq_nn[t]);
  }
  pq.clear();

  // --- RQE FP16 tail (§5.3) and per-head output assembly, head-parallel.
  std::vector<std::int64_t> tail_macs(t_count, 0);
  for_each_task(t_count, threads, [&](std::size_t t) {
    const HackKvState& st = *tasks[t].state;
    Matrix out;
    if (st.config().requant_elimination) {
      out = vq_rows[t] > 0 ? std::move(oq[t])
                           : Matrix(lq[t], tasks[t].q->cols(), 0.0f);
      if (vq_rows[t] < lkv[t]) {
        const Matrix p_tail = take_cols(p[t], vq_rows[t], lkv[t]);
        out = add(out, matmul(p_tail, st.v_tail_fp16()));
        tail_macs[t] = static_cast<std::int64_t>(lq[t]) *
                       (lkv[t] - vq_rows[t]) * tasks[t].q->cols();
      }
    } else {
      out = std::move(oq[t]);
    }
    outs[t] = std::move(out);
    p[t] = Matrix();
  });
  for (const std::int64_t macs : tail_macs) local.fp16_tail_macs += macs;
}

// ------------------------------------------------------------ tiled path

// Notional q-band height of the tile-size heuristic (not the actual band
// split, which adapts to head count and lanes).
inline constexpr std::size_t kTileHeuristicBandRows = 64;

// Upper bound on a streaming item's q-band height: caps per-item score/code
// state at O(kMaxTileBandRows · tile) so the layer's peak working set stays
// lanes · band · tile even when one head owns 16k+ query rows, and keeps a
// band's tile-resident state near the L2 the tile heuristic budgets for.
inline constexpr std::size_t kMaxTileBandRows = 128;

std::size_t l2_cache_bytes() {
  static const std::size_t bytes = [] {
#if defined(_SC_LEVEL2_CACHE_SIZE)
    const long v = sysconf(_SC_LEVEL2_CACHE_SIZE);
    if (v > 0) return static_cast<std::size_t>(v);
#endif
    return static_cast<std::size_t>(1) << 20;  // conservative 1 MiB default
  }();
  return bytes;
}

// Per-KV-head preparation shared across the GQA query heads reading it and
// across every tile of the streaming pass: the hoisted NT K factors, the
// quantized V view, and per-tile segment geometry with its Σ v' sums (so row
// bands never re-reduce the V codes).
struct TiledStatePrep {
  const HackKvState* st = nullptr;
  std::unique_ptr<HqNtPrep> k_prep;
  const QuantizedMatrix* v = nullptr;  // quantized V store (null if no rows)
  QuantizedMatrix spliced;             // RQE-off backing storage
  const SumCache* v_sums = nullptr;
  std::size_t v_rows = 0;              // tokens covered by the quantized V
  std::size_t tile = 0;                // resolved KV-tile width
  struct TileData {
    std::vector<KvSegment> segments;
    KvTileBSums bsums;
  };
  std::vector<TileData> tiles;  // tile ordinal over [0, v_rows)
};

// The streaming-softmax engine for multi-row (prefill) tasks. Each work item
// owns a contiguous q-row band of one head and walks the key dimension in KV
// tiles: score tile → online-softmax fold → per-segment P quantization →
// Eq. (4) P·V accumulation → FP16-tail accumulation, all against
// O(band · tile) local state. Every output row lives in exactly one item and
// every random draw is keyed to (task, tile, absolute row), so results are
// independent of the band decomposition and the thread count. Non-causal
// bands instead run a two-pass max-then-sum schedule (run_item_two_pass):
// pass 1 finds the final row max and stashes the quantized P tiles, pass 2
// accumulates them with max-corrected metadata, eliminating the per-tile
// O(band · d) output rescale at the cost of O(band · L_v) stashed codes.
void run_tiled_attention(std::span<HeadAttentionTask> tasks,
                         std::span<const std::size_t> lq,
                         std::span<const std::size_t> lkv,
                         std::span<const AttentionOptions> opts,
                         std::span<Matrix> outs, HackAttnStats& local,
                         int threads) {
  const std::size_t t_count = tasks.size();

  // --- Quantize Q (same recipe as the flat path) and hoist Σ q' per row so
  // the tile loop never re-reduces the Q codes.
  std::vector<QuantizedMatrix> qq(t_count);
  std::vector<std::vector<std::int32_t>> q_sums(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    local.quantized_values += static_cast<std::int64_t>(tasks[t].q->size());
  }
  for_each_task(t_count, threads, [&](std::size_t t) {
    const HackAttentionConfig& cfg = tasks[t].state->config();
    qq[t] = quantize(*tasks[t].q, cfg.q_bits, cfg.pi, QuantAxis::kRow,
                     cfg.rounding, *tasks[t].q_rng,
                     /*allow_ragged_tail=*/false, threads);
    q_sums[t] = hq_a_row_sums(qq[t]);
  });
  for (std::size_t t = 0; t < t_count; ++t) {
    // MZ adds of the hoisted Σ q' (the per-call cost in the flat engine).
    local.approx_flops +=
        static_cast<std::int64_t>(lq[t]) * tasks[t].q->cols();
  }

  // --- Per-KV-head prep: hoisted NT K factors (shared across GQA heads and
  // tiles) and the quantized V view the P·V segments multiply against.
  // Heap-held so the RQE-off prep's self-reference (v -> spliced) survives
  // vector growth.
  std::vector<std::unique_ptr<TiledStatePrep>> preps;
  std::vector<std::size_t> prep_of(t_count, 0);
  for (std::size_t t = 0; t < t_count; ++t) {
    const HackKvState& st = *tasks[t].state;
    std::size_t found = preps.size();
    for (std::size_t p = 0; p < preps.size(); ++p) {
      if (preps[p]->st == &st) {
        found = p;
        break;
      }
    }
    if (found == preps.size()) {
      const HackAttentionConfig& cfg = st.config();
      auto prep = std::make_unique<TiledStatePrep>();
      prep->st = &st;
      prep->k_prep = std::make_unique<HqNtPrep>(
          st.k(), cfg.summation_elimination ? &st.k_sums() : nullptr);
      local.sum_recompute_flops += prep->k_prep->sum_flops();
      if (cfg.requant_elimination) {
        if (st.quantized_v_rows() > 0) {
          prep->v = &st.v_quantized();
          prep->v_rows = st.quantized_v_rows();
          prep->v_sums = cfg.summation_elimination ? &st.v_sums() : nullptr;
        }
      } else {
        prep->spliced = st.v_quantized_all();
        HACK_CHECK(prep->spliced.rows == st.tokens(),
                   "RQE-off V store out of sync");
        prep->v = &prep->spliced;
        prep->v_rows = st.tokens();
      }
      prep->tile = attention_tile_tokens(cfg, st.tokens());
      for (std::size_t kb = 0; kb < prep->v_rows; kb += prep->tile) {
        const std::size_t q_end = std::min(kb + prep->tile, prep->v_rows);
        TiledStatePrep::TileData td;
        td.segments = kv_tile_segments(kb, q_end, prep->v_rows, cfg.pi);
        td.bsums = kv_tile_b_sums(*prep->v, prep->v_sums, td.segments);
        local.sum_recompute_flops += td.bsums.sum_flops;
        prep->tiles.push_back(std::move(td));
      }
      preps.push_back(std::move(prep));
    }
    prep_of[t] = found;
  }

  // --- Resolve the tile width and fork the P-tile sub-streams: one stream
  // per (task, tile) in task-then-tile order, then one per row inside the
  // item via a deterministic fork walk — so the codes depend only on the
  // task's p_rng state, never on banding or scheduling.
  std::vector<std::size_t> tile(t_count), n_tiles(t_count);
  std::vector<std::vector<Rng>> tile_rngs(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    tile[t] = preps[prep_of[t]]->tile;
    n_tiles[t] = (lkv[t] + tile[t] - 1) / tile[t];
    tile_rngs[t].reserve(n_tiles[t]);
    for (std::size_t k = 0; k < n_tiles[t]; ++k) {
      tile_rngs[t].push_back(tasks[t].p_rng->fork());
    }
  }

  // --- Work items: (task × q-row band), like the batched GEMM launches.
  ThreadPool& pool = ThreadPool::global();
  const std::size_t lanes =
      threads <= 0 ? pool.lanes() : static_cast<std::size_t>(threads);
  const std::size_t parallel_bands =
      std::max<std::size_t>(1, (2 * lanes + t_count - 1) / t_count);
  struct Item {
    std::size_t task, band, r0, r1;
  };
  std::vector<Item> items;
  std::vector<std::size_t> task_bands(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    outs[t] = Matrix(lq[t], tasks[t].q->cols(), 0.0f);
    const std::size_t m = lq[t];
    const std::size_t bands = std::min(
        m, std::max(parallel_bands,
                    (m + kMaxTileBandRows - 1) / kMaxTileBandRows));
    task_bands[t] = bands;
    for (std::size_t band = 0; band < bands; ++band) {
      items.push_back({t, band, band * m / bands, (band + 1) * m / bands});
    }
  }

  // Per-(tile, band) walk states of the row-fork streams, precomputed with
  // one serial pass per (task, tile) — row r's stream is always the (r+1)-th
  // fork of the tile stream, so saving the walk at each band's first row
  // spares every item the O(r0) catch-up draws without changing a single
  // code. Indexed [band * n_tiles + tile].
  std::vector<std::vector<Rng>> band_rngs(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    const std::size_t bands = task_bands[t];
    const std::size_t m = lq[t];
    band_rngs[t].reserve(bands * n_tiles[t]);
    band_rngs[t].assign(bands * n_tiles[t], Rng(0));
    for (std::size_t ti = 0; ti < n_tiles[t]; ++ti) {
      Rng walk = tile_rngs[t][ti];
      std::size_t r = 0;
      for (std::size_t band = 0; band < bands; ++band) {
        const std::size_t r0 = band * m / bands;
        for (; r < r0; ++r) (void)walk.next_u64();
        band_rngs[t][band * n_tiles[t] + ti] = walk;
      }
    }
  }

  std::vector<HackAttnStats> item_stats(items.size());

  // Two-pass max-then-sum variant for non-causal bands. Pass 1 scores every
  // tile, folds the running row max into the *denominator* only, and stashes
  // each tile's quantized P codes + segment metadata (quantized in exactly
  // the one-pass RNG order, so the codes are bit-identical to the one-pass
  // engine's). Pass 2 replays each tile's Eq. (4) P·V accumulate with the
  // stashed (min, scale) metadata scaled by exp(m_tile - m_final) — the
  // correction is linear in (a_min, a_scale), and a2 = s_a·Σa' rides on the
  // scale — so the O(band · d) output band is written once per tile instead
  // of rescaled on every running-max improvement. The RQE FP16 tail is
  // accumulated after pass 1 from stashed raw scores under the final max.
  // Causal bands keep the one-pass fold: their staircase horizon retires
  // rows tile by tile, which the stash layout would have to mirror.
  const auto run_item_two_pass = [&](std::size_t idx) {
    const Item& it = items[idx];
    const std::size_t t = it.task;
    const HeadAttentionTask& task = tasks[t];
    const TiledStatePrep& sp = *preps[prep_of[t]];
    const HackAttentionConfig& cfg = task.state->config();
    HackAttnStats& st = item_stats[idx];
    Matrix& out = outs[t];
    const std::size_t d = task.q->cols();
    const std::size_t L = lkv[t];
    const std::size_t tl = tile[t];
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
    constexpr float kNegInf = -std::numeric_limits<float>::infinity();

    const std::size_t band = it.r1 - it.r0;
    std::vector<float> row_max(band, kNegInf);
    std::vector<float> row_denom(band, 0.0f);
    std::vector<float> p;  // band × tile score / weight scratch

    // Pass-1 stash sized up front: Σ qlen over the quantized tiles is
    // exactly sp.v_rows codes per row, plus per-(tile, row) metadata and the
    // running max after each tile's fold.
    const std::size_t n_q_tiles = sp.tiles.size();
    std::size_t total_segs = 0;
    for (const TiledStatePrep::TileData& td : sp.tiles) {
      total_segs += td.segments.size();
    }
    std::vector<std::uint8_t> all_codes(band * sp.v_rows, 0);
    std::vector<float> all_mins(band * total_segs, 0.0f);
    std::vector<float> all_scales(band * total_segs, 0.0f);
    std::vector<std::int32_t> all_csums(band * total_segs, 0);
    std::vector<float> tile_rmax(n_q_tiles * band, 0.0f);
    const std::size_t tail_len = L > sp.v_rows ? L - sp.v_rows : 0;
    std::vector<float> tail_scores(band * tail_len, 0.0f);

    // --- Pass 1: score, fold the max into the denominator, stash P.
    std::size_t code_off = 0, meta_off = 0;
    for (std::size_t kb = 0, ti = 0; kb < L; kb += tl, ++ti) {
      const std::size_t ke = std::min(kb + tl, L);
      const std::size_t tlen = ke - kb;
      p.resize(band * tlen);
      hq_nt_score_tile(qq[t], *sp.k_prep, q_sums[t], it.r0, it.r1, kb, ke,
                       p.data());
      st.int_macs += static_cast<std::int64_t>(band) * tlen * d;
      st.approx_flops += 9 * static_cast<std::int64_t>(band) * tlen;

      for (std::size_t r = it.r0; r < it.r1; ++r) {
        float* srow = p.data() + (r - it.r0) * tlen;
        float tile_max = kNegInf;
        for (std::size_t z = 0; z < tlen; ++z) {
          srow[z] *= inv_sqrt_d;
          tile_max = std::max(tile_max, srow[z]);
        }
        // Raw scores over the FP16-tail slice, needed once the max is final.
        if (ke > sp.v_rows) {
          const std::size_t tb = std::max(kb, sp.v_rows);
          std::copy(srow + (tb - kb), srow + tlen,
                    tail_scores.data() + (r - it.r0) * tail_len +
                        (tb - sp.v_rows));
        }
        const float prev = row_max[r - it.r0];
        const float new_max = std::max(prev, tile_max);
        const float corr = std::exp(prev - new_max);  // 0 on the first tile
        if (corr != 1.0f) row_denom[r - it.r0] *= corr;
        float dsum = 0.0f;
        for (std::size_t z = 0; z < tlen; ++z) {
          const float w = std::exp(srow[z] - new_max);
          srow[z] = w;
          dsum += w;
        }
        row_denom[r - it.r0] += dsum;
        row_max[r - it.r0] = new_max;
      }

      const std::size_t q_end = std::min(ke, sp.v_rows);
      if (q_end > kb) {
        const std::vector<KvSegment>& segments = sp.tiles[ti].segments;
        const std::size_t seg_count = segments.size();
        const std::size_t qlen = q_end - kb;
        Rng walk = band_rngs[t][it.band * n_tiles[t] + ti];
        for (std::size_t r = it.r0; r < it.r1; ++r) {
          Rng row_rng = walk.fork();
          const float* prow = p.data() + (r - it.r0) * tlen;
          std::uint8_t* crow = all_codes.data() + code_off +
                               (r - it.r0) * qlen;
          for (std::size_t s = 0; s < seg_count; ++s) {
            const KvSegment& seg = segments[s];
            const std::size_t len = seg.end - seg.begin;
            float smin = 0.0f, sscale = 0.0f;
            quantize_span({prow + (seg.begin - kb), len},
                          {crow + (seg.begin - kb), len}, cfg.q_bits,
                          cfg.rounding, row_rng, smin, sscale);
            std::int32_t csum = 0;
            for (std::size_t z = 0; z < len; ++z) {
              csum += crow[(seg.begin - kb) + z];
            }
            const std::size_t m =
                meta_off + (r - it.r0) * seg_count + s;
            all_mins[m] = smin;
            all_scales[m] = sscale;
            all_csums[m] = csum;
            st.quantized_values += static_cast<std::int64_t>(len);
          }
          tile_rmax[ti * band + (r - it.r0)] = row_max[r - it.r0];
        }
        code_off += band * qlen;
        meta_off += band * seg_count;
      }
    }

    // --- Pass 2: replay each tile's P·V with the metadata rescaled to the
    // final max. exp(m_tile - m_final) is exactly 1.0f when the max never
    // improved after the tile, so late tiles pay no rounding.
    std::vector<float> pmins, pscales;
    code_off = 0;
    meta_off = 0;
    for (std::size_t ti = 0; ti < n_q_tiles; ++ti) {
      const std::size_t kb = ti * tl;
      const std::size_t q_end = std::min(kb + tl, sp.v_rows);
      const std::size_t qlen = q_end - kb;
      const std::vector<KvSegment>& segments = sp.tiles[ti].segments;
      const std::size_t seg_count = segments.size();
      pmins.assign(band * seg_count, 0.0f);
      pscales.assign(band * seg_count, 0.0f);
      for (std::size_t rr = 0; rr < band; ++rr) {
        const float corr =
            std::exp(tile_rmax[ti * band + rr] - row_max[rr]);
        for (std::size_t s = 0; s < seg_count; ++s) {
          pmins[rr * seg_count + s] =
              all_mins[meta_off + rr * seg_count + s] * corr;
          pscales[rr * seg_count + s] =
              all_scales[meta_off + rr * seg_count + s] * corr;
        }
      }
      hq_nn_tile_accumulate(
          all_codes.data() + code_off, band, pmins, pscales,
          {all_csums.data() + meta_off, band * seg_count}, *sp.v, segments,
          sp.tiles[ti].bsums.sums, kb, q_end, &out(it.r0, 0));
      st.int_macs += static_cast<std::int64_t>(band) * d * qlen;
      st.approx_flops += static_cast<std::int64_t>(band) * qlen +
                         9 * static_cast<std::int64_t>(band) * d;
      code_off += band * qlen;
      meta_off += band * seg_count;
    }

    // --- RQE FP16 tail under the final max.
    if (cfg.requant_elimination && tail_len > 0) {
      const Matrix& vt = task.state->v_tail_fp16();
      for (std::size_t r = it.r0; r < it.r1; ++r) {
        const float* srow = tail_scores.data() + (r - it.r0) * tail_len;
        float* orow = &out(r, 0);
        for (std::size_t z = 0; z < tail_len; ++z) {
          const float w = std::exp(srow[z] - row_max[r - it.r0]);
          const auto vrow = vt.row(z);
          for (std::size_t c = 0; c < d; ++c) orow[c] += w * vrow[c];
        }
        st.fp16_tail_macs += static_cast<std::int64_t>(tail_len) * d;
      }
    }

    // --- Normalize by the streaming-softmax denominator.
    for (std::size_t r = it.r0; r < it.r1; ++r) {
      HACK_CHECK(row_denom[r - it.r0] > 0.0f,
                 "row " << r << " attended to no keys");
      const float inv = 1.0f / row_denom[r - it.r0];
      float* orow = &out(r, 0);
      const std::size_t d2 = out.cols();
      for (std::size_t c = 0; c < d2; ++c) orow[c] *= inv;
    }
  };

  const auto run_item = [&](std::size_t idx) {
    const Item& it = items[idx];
    const std::size_t t = it.task;
    const bool causal = opts[t].causal;
    const std::size_t ko = opts[t].key_offset;
    const HeadAttentionTask& task = tasks[t];
    const TiledStatePrep& sp = *preps[prep_of[t]];
    const HackAttentionConfig& cfg = task.state->config();
    HackAttnStats& st = item_stats[idx];
    Matrix& out = outs[t];
    const std::size_t d = task.q->cols();
    const std::size_t L = lkv[t];
    const std::size_t tl = tile[t];
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
    constexpr float kNegInf = -std::numeric_limits<float>::infinity();

    const std::size_t band = it.r1 - it.r0;
    std::vector<float> row_max(band, kNegInf);
    std::vector<float> row_denom(band, 0.0f);
    std::vector<float> p;                 // band × tile score / weight block
    std::vector<std::uint8_t> pcodes;     // band × tile P codes
    std::vector<float> pmins, pscales;    // band × segments metadata
    std::vector<std::int32_t> pcsums;

    for (std::size_t kb = 0, ti = 0; kb < L; kb += tl, ++ti) {
      // Rows whose causal horizon ends at or before this tile are done;
      // the horizon only recedes, so the first all-inactive tile ends the
      // band. The tile extent itself never depends on the band, so work
      // counters stay band-invariant.
      std::size_t r_act = it.r0;
      if (causal && kb > ko) r_act = std::max(it.r0, kb - ko);
      if (r_act >= it.r1) break;
      const std::size_t ke = std::min(kb + tl, L);
      const std::size_t tlen = ke - kb;
      const std::size_t act = it.r1 - r_act;

      // --- Score tile S = Q·Kᵀ over [kb, ke), Eq. (4)-corrected.
      p.resize(act * tlen);
      hq_nt_score_tile(qq[t], *sp.k_prep, q_sums[t], r_act, it.r1, kb, ke,
                       p.data());
      st.int_macs += static_cast<std::int64_t>(act) * tlen * d;
      st.approx_flops += 9 * static_cast<std::int64_t>(act) * tlen;

      // --- Online softmax fold: rescale the running output/denominator by
      // exp(old_max - new_max), then bank this tile's exp weights.
      for (std::size_t r = r_act; r < it.r1; ++r) {
        float* srow = p.data() + (r - r_act) * tlen;
        const std::size_t vis_abs = causal ? std::min(ke, ko + r + 1) : ke;
        const std::size_t vlen = vis_abs - kb;  // ≥ 1 for active rows
        float tile_max = kNegInf;
        for (std::size_t z = 0; z < vlen; ++z) {
          srow[z] *= inv_sqrt_d;
          tile_max = std::max(tile_max, srow[z]);
        }
        const float prev = row_max[r - it.r0];
        const float new_max = std::max(prev, tile_max);
        const float corr = std::exp(prev - new_max);  // 0 on the first tile
        if (corr != 1.0f) {
          row_denom[r - it.r0] *= corr;
          float* orow = &out(r, 0);
          for (std::size_t c = 0; c < d; ++c) orow[c] *= corr;
        }
        float dsum = 0.0f;
        for (std::size_t z = 0; z < vlen; ++z) {
          const float w = std::exp(srow[z] - new_max);
          srow[z] = w;
          dsum += w;
        }
        std::fill(srow + vlen, srow + tlen, 0.0f);  // masked region
        row_denom[r - it.r0] += dsum;
        row_max[r - it.r0] = new_max;
      }

      // --- Quantized P·V over the tile's slice of the quantized V store,
      // segment by segment on the absolute Π grid.
      const std::size_t q_end = std::min(ke, sp.v_rows);
      if (q_end > kb) {
        const TiledStatePrep::TileData& td = sp.tiles[ti];
        const std::vector<KvSegment>& segments = td.segments;
        const std::size_t seg_count = segments.size();
        const std::size_t qlen = q_end - kb;
        pcodes.assign(act * qlen, 0);
        pmins.assign(act * seg_count, 0.0f);
        pscales.assign(act * seg_count, 0.0f);
        pcsums.assign(act * seg_count, 0);

        // Deterministic per-row streams: row r of this tile always uses the
        // (r + 1)-th fork of the tile's stream, whatever the banding; the
        // band's walk state was precomputed, so only the r_act - r0 rows the
        // causal mask already retired are skipped here.
        Rng walk = band_rngs[t][it.band * n_tiles[t] + ti];
        for (std::size_t r = it.r0; r < r_act; ++r) (void)walk.next_u64();
        for (std::size_t r = r_act; r < it.r1; ++r) {
          Rng row_rng = walk.fork();
          const std::size_t vis_abs = causal ? std::min(ke, ko + r + 1) : ke;
          const float* prow = p.data() + (r - r_act) * tlen;
          std::uint8_t* crow = pcodes.data() + (r - r_act) * qlen;
          for (std::size_t s = 0; s < seg_count; ++s) {
            const KvSegment& seg = segments[s];
            if (seg.begin >= vis_abs) break;  // fully masked: stays (0, 0)
            const std::size_t len = seg.end - seg.begin;
            float smin = 0.0f, sscale = 0.0f;
            quantize_span({prow + (seg.begin - kb), len},
                          {crow + (seg.begin - kb), len}, cfg.q_bits,
                          cfg.rounding, row_rng, smin, sscale);
            std::int32_t csum = 0;
            for (std::size_t z = 0; z < len; ++z) {
              csum += crow[(seg.begin - kb) + z];
            }
            pmins[(r - r_act) * seg_count + s] = smin;
            pscales[(r - r_act) * seg_count + s] = sscale;
            pcsums[(r - r_act) * seg_count + s] = csum;
            st.quantized_values += static_cast<std::int64_t>(len);
          }
        }

        hq_nn_tile_accumulate(pcodes.data(), act, pmins, pscales, pcsums,
                              *sp.v, segments, td.bsums.sums, kb, q_end,
                              &out(r_act, 0));
        st.int_macs += static_cast<std::int64_t>(act) * d * qlen;
        st.approx_flops += static_cast<std::int64_t>(act) * qlen +
                           9 * static_cast<std::int64_t>(act) * d;
      }

      // --- RQE FP16 tail slice of this tile, accumulated in float.
      if (cfg.requant_elimination && ke > sp.v_rows) {
        const std::size_t tb = std::max(kb, sp.v_rows);
        const Matrix& vt = task.state->v_tail_fp16();
        for (std::size_t r = r_act; r < it.r1; ++r) {
          const std::size_t vis_abs = causal ? std::min(ke, ko + r + 1) : ke;
          if (vis_abs <= tb) continue;
          const float* prow = p.data() + (r - r_act) * tlen;
          float* orow = &out(r, 0);
          for (std::size_t z = tb; z < vis_abs; ++z) {
            const float w = prow[z - kb];
            const auto vrow = vt.row(z - sp.v_rows);
            for (std::size_t c = 0; c < d; ++c) orow[c] += w * vrow[c];
          }
          st.fp16_tail_macs +=
              static_cast<std::int64_t>(vis_abs - tb) * d;
        }
      }
    }

    // --- Normalize by the online-softmax denominator.
    for (std::size_t r = it.r0; r < it.r1; ++r) {
      HACK_CHECK(row_denom[r - it.r0] > 0.0f,
                 "row " << r << " attended to no keys");
      const float inv = 1.0f / row_denom[r - it.r0];
      float* orow = &out(r, 0);
      const std::size_t d2 = out.cols();
      for (std::size_t c = 0; c < d2; ++c) orow[c] *= inv;
    }
  };

  const auto run_one = [&](std::size_t i) {
    if (opts[items[i].task].causal) {
      run_item(i);
    } else {
      run_item_two_pass(i);
    }
  };
  if (threads == 1 || items.size() == 1) {
    for (std::size_t i = 0; i < items.size(); ++i) run_one(i);
  } else {
    pool.parallel_for(items.size(),
                      chunks_for_request(threads, items.size(),
                                         /*auto_chunks=*/items.size()),
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) run_one(i);
                      });
  }
  for (const HackAttnStats& s : item_stats) add_attn_stats(local, s);
}

}  // namespace

std::size_t attention_tile_tokens(const HackAttentionConfig& config,
                                  std::size_t lkv) {
  (void)lkv;
  if (config.tile_tokens > 0) return config.tile_tokens;
  // Own parser rather than ThreadPool's: a tile override may legitimately be
  // far larger than any sane thread count (e.g. 8192 when profiling 16k
  // contexts). Empty/non-numeric/zero means "no override".
  static const std::size_t env_tile = [] {
    const char* value = std::getenv("HACK_ATTN_TILE_TOKENS");
    if (value == nullptr || *value == '\0') return std::size_t{0};
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0' || parsed == 0 ||
        parsed > (1ull << 30)) {
      return std::size_t{0};
    }
    return static_cast<std::size_t>(parsed);
  }();
  if (env_tile > 0) return env_tile;
  // L2-aware default: the largest whole-Π tile whose per-band score + P-code
  // state (≈ 5 B/cell over a notional 64-row q band) fits half the per-core
  // L2. Whole-Π tiles keep every P quantization segment aligned to a full V
  // partition — SumCache-readable, no Σ b' recompute — which is the same
  // cache-locality argument the retired 96 MiB head-chunking budget made at
  // whole-head granularity, now enforced per tile instead of per launch.
  const std::size_t budget = l2_cache_bytes() / 2;
  std::size_t t = budget / (kTileHeuristicBandRows * 5);
  t -= t % config.pi;
  // Π may exceed the 4096 cap (nothing in the config forbids a huge
  // partition); the one-whole-partition floor wins over the cap then —
  // std::clamp with lo > hi would be UB.
  return std::max(std::min<std::size_t>(t, 4096), config.pi);
}

std::size_t tiled_attention_working_set_bytes(std::size_t lq, std::size_t lkv,
                                              std::size_t query_heads,
                                              std::size_t d_head,
                                              std::size_t tile,
                                              std::size_t lanes) {
  // Mirrors the engine's band decomposition: enough bands to feed the lanes,
  // but never taller than kMaxTileBandRows.
  const std::size_t bands = std::max(
      std::max<std::size_t>(1, (2 * lanes + query_heads - 1) / query_heads),
      (lq + kMaxTileBandRows - 1) / kMaxTileBandRows);
  const std::size_t band_rows = std::min(lq, (lq + bands - 1) / bands);
  const std::size_t tile_cols = std::min(tile, lkv);
  // Score floats + P codes per cell, the int32 P·V dot tile, the float
  // output band, and the per-segment factor vectors.
  const std::size_t per_item = band_rows * tile_cols * 5 +
                               band_rows * d_head * 8 + 3 * d_head * 4 +
                               tile_cols;
  const std::size_t in_flight = std::min(lanes, query_heads * bands);
  return in_flight * per_item;
}

std::size_t untiled_attention_working_set_bytes(std::size_t lq,
                                                std::size_t lkv,
                                                std::size_t query_heads) {
  // The PR 2 engine: every in-flight head held the full lq × lkv score
  // matrix, its softmax, and the P codes (4 + 4 + 1 B/cell), with heads
  // chunked at a 96 MiB budget and a one-head floor.
  const std::size_t per_head = lq * lkv * 9;
  if (per_head == 0) return 0;
  const std::size_t budget = 96u << 20;
  const std::size_t heads_per_chunk =
      std::min(query_heads, std::max<std::size_t>(1, budget / per_head));
  return heads_per_chunk * per_head;
}

void hack_attention_batched(std::span<HeadAttentionTask> tasks,
                            const AttentionOptions& options,
                            std::vector<Matrix>& outs, HackAttnStats* stats,
                            int threads) {
  const std::size_t t_count = tasks.size();
  outs.assign(t_count, Matrix());
  if (t_count == 0) return;

  std::vector<std::size_t> lq(t_count), lkv(t_count), vq_rows(t_count);
  std::vector<AttentionOptions> opts(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    const HeadAttentionTask& task = tasks[t];
    HACK_CHECK(task.q != nullptr && task.state != nullptr &&
                   task.q_rng != nullptr && task.p_rng != nullptr,
               "attention task missing a field");
    HACK_CHECK(task.q->cols() == task.state->d_head(),
               "query head dim mismatch");
    HACK_CHECK(task.state->tokens() > 0, "attention over empty KV state");
    lq[t] = task.q->rows();
    lkv[t] = task.state->tokens();
    vq_rows[t] = task.state->quantized_v_rows();
    opts[t] = task.options != nullptr ? *task.options : options;
  }

  HackAttnStats local{};

  // Route per task: single-row launches (decode) keep the flat GEMV path,
  // multi-row launches stream KV tiles. A mixed launch splits; in either
  // sub-launch, task order — and with it every RNG fork — is preserved.
  std::vector<std::size_t> flat_idx, tiled_idx;
  for (std::size_t t = 0; t < t_count; ++t) {
    (lq[t] == 1 ? flat_idx : tiled_idx).push_back(t);
  }

  const auto gather_run = [&](std::span<const std::size_t> idx, bool tiled) {
    if (idx.empty()) return;
    std::vector<HeadAttentionTask> sub_tasks(idx.size());
    std::vector<std::size_t> sub_lq(idx.size()), sub_lkv(idx.size()),
        sub_vq(idx.size());
    std::vector<AttentionOptions> sub_opts(idx.size());
    std::vector<Matrix> sub_outs(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k) {
      sub_tasks[k] = tasks[idx[k]];
      sub_lq[k] = lq[idx[k]];
      sub_lkv[k] = lkv[idx[k]];
      sub_vq[k] = vq_rows[idx[k]];
      sub_opts[k] = opts[idx[k]];
    }
    if (tiled) {
      run_tiled_attention(sub_tasks, sub_lq, sub_lkv, sub_opts, sub_outs,
                          local, threads);
    } else {
      run_flat_attention(sub_tasks, sub_lq, sub_lkv, sub_vq, sub_opts,
                         sub_outs, local, threads);
    }
    for (std::size_t k = 0; k < idx.size(); ++k) {
      outs[idx[k]] = std::move(sub_outs[k]);
    }
  };
  gather_run(flat_idx, /*tiled=*/false);
  gather_run(tiled_idx, /*tiled=*/true);

  if (stats != nullptr) {
    add_attn_stats(*stats, local);
  }
}

// ------------------------------------------------------------ layer state

HackLayerKvState::HackLayerKvState(std::size_t d_head, std::size_t kv_heads,
                                   std::size_t query_heads,
                                   const HackAttentionConfig& config,
                                   std::uint64_t seed)
    : config_(config),
      d_head_(d_head),
      kv_heads_(kv_heads),
      query_heads_(query_heads),
      group_(kv_heads == 0 ? 0 : query_heads / kv_heads) {
  HACK_CHECK(kv_heads > 0, "layer needs at least one KV head");
  HACK_CHECK(query_heads > 0 && query_heads % kv_heads == 0,
             "query_heads=" << query_heads << " must be a positive multiple "
                            << "of kv_heads=" << kv_heads << " (GQA)");
  states_.reserve(kv_heads);
  rngs_.reserve(kv_heads);
  for (std::size_t h = 0; h < kv_heads; ++h) {
    states_.emplace_back(d_head, config);
    rngs_.emplace_back(seed + h);
  }
}

void HackLayerKvState::append_tokens(const Matrix& k_all, const Matrix& v_all,
                                     HackAttnStats* stats) {
  HACK_CHECK(k_all.rows() == v_all.rows(), "K/V row count mismatch");
  HACK_CHECK(k_all.cols() == kv_heads_ * d_head_ &&
                 v_all.cols() == kv_heads_ * d_head_,
             "layer K/V width must be kv_heads * d_head");
  std::vector<HackAttnStats> local(kv_heads_);
  const auto append_head = [&](std::size_t h) {
    states_[h].append_tokens(take_cols(k_all, h * d_head_, (h + 1) * d_head_),
                             take_cols(v_all, h * d_head_, (h + 1) * d_head_),
                             rngs_[h], stats != nullptr ? &local[h] : nullptr);
  };
  // Decode-step appends (one row per head) stay serial; prefill-sized chunks
  // quantize every head in one pool pass. Either way each head consumes only
  // its own stream, so the codes are identical.
  if (config_.threads == 1 ||
      k_all.size() + v_all.size() < kParallelQuantizeMinValues) {
    for (std::size_t h = 0; h < kv_heads_; ++h) append_head(h);
  } else {
    for_each_task(kv_heads_, config_.threads, append_head);
  }
  if (stats != nullptr) {
    for (const HackAttnStats& s : local) add_attn_stats(*stats, s);
  }
}

void HackLayerKvState::fork_attend_streams(std::vector<Rng>& q_rngs,
                                           std::vector<Rng>& p_rngs) {
  q_rngs.clear();
  p_rngs.clear();
  q_rngs.reserve(query_heads_);
  p_rngs.reserve(query_heads_);
  for (std::size_t g = 0; g < kv_heads_; ++g) {
    for (std::size_t sub = 0; sub < group_; ++sub) {
      q_rngs.push_back(rngs_[g].fork());
      p_rngs.push_back(rngs_[g].fork());
    }
  }
}

Matrix HackLayerKvState::attend(const Matrix& q_all,
                                const AttentionOptions& options,
                                HackAttnStats* stats) {
  // A solo attend is a multi-sequence batch of one; routing it through
  // MultiAttendBatch keeps the solo and fused paths one implementation (and
  // bit-identical by construction).
  Matrix out;
  MultiAttendBatch batch;
  batch.add(*this, q_all, options, &out);
  batch.run(config_.threads, stats);
  return out;
}

Matrix HackLayerKvState::prefill(const Matrix& q_all, const Matrix& k_all,
                                 const Matrix& v_all, HackAttnStats* stats) {
  HACK_CHECK(tokens() == 0, "prefill requires a fresh layer state");
  append_tokens(k_all, v_all, stats);
  return attend(q_all, AttentionOptions{.causal = true, .key_offset = 0},
                stats);
}

Matrix HackLayerKvState::decode_step(const Matrix& q_all, const Matrix& k_all,
                                     const Matrix& v_all,
                                     HackAttnStats* stats) {
  HACK_CHECK(q_all.rows() == 1 && k_all.rows() == 1 && v_all.rows() == 1,
             "decode processes one token at a time");
  append_tokens(k_all, v_all, stats);
  return attend(q_all,
                AttentionOptions{.causal = true, .key_offset = tokens() - 1},
                stats);
}

std::size_t HackLayerKvState::packed_kv_bytes() const {
  std::size_t total = 0;
  for (const HackKvState& st : states_) total += st.packed_kv_bytes();
  return total;
}

std::size_t HackLayerKvState::resident_code_bytes() const {
  std::size_t total = 0;
  for (const HackKvState& st : states_) total += st.resident_code_bytes();
  return total;
}

std::size_t HackLayerKvState::sum_cache_bytes() const {
  std::size_t total = 0;
  for (const HackKvState& st : states_) total += st.sum_cache_bytes();
  return total;
}

std::size_t HackLayerKvState::fp16_tail_bytes() const {
  std::size_t total = 0;
  for (const HackKvState& st : states_) total += st.fp16_tail_bytes();
  return total;
}

std::size_t HackLayerKvState::wire_bytes() const {
  std::size_t total = 0;
  for (const HackKvState& st : states_) total += st.wire_bytes();
  return total;
}

const HackKvState& HackLayerKvState::head_state(std::size_t kv_head) const {
  HACK_CHECK(kv_head < kv_heads_, "kv head " << kv_head << " out of "
                                             << kv_heads_);
  return states_[kv_head];
}

HackKvState& HackLayerKvState::head_state_mut(std::size_t kv_head) {
  HACK_CHECK(kv_head < kv_heads_, "kv head " << kv_head << " out of "
                                             << kv_heads_);
  return states_[kv_head];
}

const Rng& HackLayerKvState::head_rng(std::size_t kv_head) const {
  HACK_CHECK(kv_head < kv_heads_, "kv head " << kv_head << " out of "
                                             << kv_heads_);
  return rngs_[kv_head];
}

void HackLayerKvState::set_head_rng(std::size_t kv_head, const Rng& rng) {
  HACK_CHECK(kv_head < kv_heads_, "kv head " << kv_head << " out of "
                                             << kv_heads_);
  rngs_[kv_head] = rng;
}

// --------------------------------------------------------- multi-seq batch

void MultiAttendBatch::add(HackLayerKvState& state, const Matrix& q_all,
                           const AttentionOptions& options, Matrix* out) {
  HACK_CHECK(out != nullptr, "staged attend needs an output slot");
  HACK_CHECK(q_all.cols() == state.query_heads() * state.d_head(),
             "layer Q width must be query_heads * d_head");
  auto seq = std::make_unique<StagedSeq>();
  seq->state = &state;
  seq->q_all = &q_all;
  seq->options = options;
  seq->out = out;
  // Fork this sequence's Q/P sub-streams now, in stage order — the same
  // master-stream draws its solo attend would make at this point.
  state.fork_attend_streams(seq->q_rngs, seq->p_rngs);
  const std::size_t d_head = state.d_head();
  seq->q_heads.reserve(state.query_heads());
  for (std::size_t t = 0; t < state.query_heads(); ++t) {
    seq->q_heads.push_back(take_cols(q_all, t * d_head, (t + 1) * d_head));
  }
  seqs_.push_back(std::move(seq));
}

void MultiAttendBatch::run(int threads, HackAttnStats* stats) {
  std::size_t task_count = 0;
  for (const auto& seq : seqs_) task_count += seq->state->query_heads();
  std::vector<HeadAttentionTask> tasks;
  tasks.reserve(task_count);
  for (auto& seq : seqs_) {
    HackLayerKvState& st = *seq->state;
    const std::size_t group = st.query_heads() / st.kv_heads();
    for (std::size_t t = 0; t < st.query_heads(); ++t) {
      tasks.push_back({&seq->q_heads[t], &st.head_state_mut(t / group),
                       &seq->q_rngs[t], &seq->p_rngs[t], &seq->options});
    }
  }

  std::vector<Matrix> outs;
  hack_attention_batched(tasks, AttentionOptions{}, outs, stats, threads);

  // Scatter each sequence's per-head outputs back into its head-major slab.
  std::size_t base = 0;
  for (auto& seq : seqs_) {
    const HackLayerKvState& st = *seq->state;
    const std::size_t d_head = st.d_head();
    Matrix& out = *seq->out;
    out = Matrix(seq->q_all->rows(), st.query_heads() * d_head);
    for (std::size_t t = 0; t < st.query_heads(); ++t) {
      const Matrix& head_out = outs[base + t];
      for (std::size_t r = 0; r < out.rows(); ++r) {
        const auto src = head_out.row(r);
        std::copy(src.begin(), src.end(), out.row(r).begin() + t * d_head);
      }
    }
    base += st.query_heads();
  }
  seqs_.clear();
}

}  // namespace hack
