// Asymmetric b-bit quantization with per-partition (min, scale) metadata.
//
// Implements the quantizer of §5.2: within each partition of Π values the
// quantizer finds [min, max], sets scale = (max - min) / (2^b - 1), and maps
// x -> round((x - min) / scale) with stochastic rounding. Metadata (min and
// scale) is stored in FP16 exactly as the paper's implementation does, so
// dequantization error includes the FP16 metadata rounding.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/rng.h"
#include "quant/partition.h"
#include "tensor/matrix.h"

namespace hack {

enum class Rounding {
  kStochastic,  // the paper's default (unbiased)
  kNearest,     // deterministic round-to-nearest
};

// A quantized matrix: integer codes plus per-(outer, group) metadata.
//
// Codes are row-major and default to one byte per code (`storage_bits` = 8),
// which is what quantize() produces and what transient operands (Q, the
// softmax P tiles) use. Resident KV planes call pack_storage() to switch to
// bit-packed rows (`storage_bits` = bits of 2 or 4, little-endian within each
// byte, every row padded to a whole byte): the packed-aware int-GEMM kernels
// consume that layout directly, so a 2-bit cache really occupies ~1/4 of the
// unpacked bytes in memory — not just on the wire. `packed_code_bytes()`
// reports the packed footprint either way.
struct QuantizedMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  int bits = 0;
  QuantAxis axis = QuantAxis::kRow;
  std::size_t pi = 0;

  // Storage width of each code in `codes`: 8 = one byte per code; 2 or 4 =
  // rows bit-packed (only ever equal to `bits` in that case).
  int storage_bits = 8;

  // Codes, row-major, same shape as the source matrix (values < 2^bits).
  // When storage_bits != 8 each row occupies code_row_stride() bytes.
  std::vector<std::uint8_t> codes;

  // Metadata indexed by outer * group_count + group. FP16-rounded.
  std::vector<float> mins;
  std::vector<float> scales;

  // Cached partition count along the inner dimension. Maintained by
  // quantize() and every mutator; 0 (e.g. on a hand-assembled matrix) falls
  // back to deriving it from the metadata size, so group_count() stays a
  // cheap field read on the hot path instead of a division per call.
  std::size_t groups = 0;

  std::size_t outer() const { return axis == QuantAxis::kRow ? rows : cols; }
  std::size_t inner() const { return axis == QuantAxis::kRow ? cols : rows; }
  std::size_t group_count() const {
    return groups != 0 ? groups : mins.size() / (outer() == 0 ? 1 : outer());
  }

  // Bytes one code row occupies in `codes`.
  std::size_t code_row_stride() const {
    return storage_bits == 8
               ? cols
               : (cols * static_cast<std::size_t>(storage_bits) + 7) / 8;
  }
  bool packed_storage() const { return storage_bits != 8; }

  std::uint8_t code_at(std::size_t r, std::size_t c) const {
    if (storage_bits == 8) return codes[r * cols + c];
    const std::size_t bit = c * static_cast<std::size_t>(storage_bits);
    return static_cast<std::uint8_t>(
        (codes[r * code_row_stride() + (bit >> 3)] >> (bit & 7)) &
        ((1u << storage_bits) - 1u));
  }
  float min_of(std::size_t outer_idx, std::size_t group) const {
    return mins[outer_idx * group_count() + group];
  }
  float scale_of(std::size_t outer_idx, std::size_t group) const {
    return scales[outer_idx * group_count() + group];
  }

  // Packed size of the integer codes in bytes (bit-exact 2/4/8-bit packing,
  // padded per outer slice to a byte boundary).
  std::size_t packed_code_bytes() const;

  // Bytes of FP16 (min, scale) metadata.
  std::size_t metadata_bytes() const { return 2 * 2 * mins.size(); }

  // Total wire footprint: packed codes + metadata.
  std::size_t stored_bytes() const {
    return packed_code_bytes() + metadata_bytes();
  }
};

// Quantizes `m` along `axis` with partition size `pi` and `bits` precision.
// `allow_ragged_tail` allows the final partition to be shorter than Π (used
// by the growing V cache).
//
// Matrices of at least kParallelQuantizeMinValues values (and >= 2 outer
// slices) run the outer-slice loop on the shared ThreadPool: one sub-Rng is
// forked from `rng` per outer slice, in slice order, before any work is
// dispatched, so the codes depend only on the seed — never on the pool size
// or the `threads` request (0 = auto, 1 = serial, N = N chunks). Smaller
// matrices — decode-step appends — take the serial path on the caller's rng
// directly, byte-for-byte identical to the original implementation, and pay
// no pool overhead.
QuantizedMatrix quantize(const Matrix& m, int bits, std::size_t pi,
                         QuantAxis axis, Rounding rounding, Rng& rng,
                         bool allow_ragged_tail = false, int threads = 0);

// Quantizes one contiguous partition of values with exactly the full-matrix
// path's semantics: [min, max] over the span, FP16-rounded metadata, codes
// computed against the rounded (min, scale) with the requested rounding rule.
// `codes` must have values.size() entries; the FP16 metadata lands in
// (out_min, out_scale). The streaming attention engine uses this to quantize
// softmax tiles segment by segment.
void quantize_span(std::span<const float> values, std::span<std::uint8_t> codes,
                   int bits, Rounding rounding, Rng& rng, float& out_min,
                   float& out_scale);

// Size threshold (in values) at which quantize()/dequantize() move their
// outer loops onto the shared ThreadPool.
inline constexpr std::size_t kParallelQuantizeMinValues = 64 * 1024;

// Converts `q` to bit-packed row storage in place (no-op at 8 bits or when
// already packed). The packed layout is what the resident KV planes hold and
// what the packed int-GEMM kernels consume.
void pack_storage(QuantizedMatrix& q);

// Converts `q` back to one-byte-per-code storage in place (no-op when
// already unpacked). Cold-path consumers that want raw byte codes (codecs,
// benches, tests) use this.
void unpack_storage(QuantizedMatrix& q);

// Reconstructs the real-valued matrix: x ≈ scale * code + min. Row-parallel
// on the shared ThreadPool above the same size threshold as quantize().
Matrix dequantize(const QuantizedMatrix& q, int threads = 0);

// Worst-case absolute reconstruction error for one partition of `q`:
// stochastic rounding perturbs by at most one code step (= scale).
float max_abs_error_bound(const QuantizedMatrix& q);

// Appends the rows of `extra` to `q`; both must be row-axis quantized with
// identical cols/pi/bits. This is the K-cache growth step: each new token's K
// vector is partitioned along the (fixed) head dimension, so existing
// partitions and their [min, max] never change (§5.3).
void append_rows(QuantizedMatrix& q, const QuantizedMatrix& extra);

// Appends `extra` (a col-axis quantized Π-row chunk) below `q` (col-axis,
// same cols/pi/bits, row count a multiple of Π). This is the V-cache growth
// step: once the FP16 tail block of V fills a whole partition it is quantized
// and appended as complete new groups, so earlier groups are never
// requantized (RQE, §5.3).
void append_inner_groups(QuantizedMatrix& q, const QuantizedMatrix& extra);

}  // namespace hack
