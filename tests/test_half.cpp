#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/rng.h"
#include "tensor/half.h"

namespace hack {
namespace {

TEST(Half, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(fp16_round(f), f) << i;
  }
}

TEST(Half, ExactPowersOfTwo) {
  for (int e = -14; e <= 15; ++e) {
    const float f = std::ldexp(1.0f, e);
    EXPECT_EQ(fp16_round(f), f) << "2^" << e;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3c00);
  EXPECT_EQ(Half(-2.0f).bits(), 0xc000);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7bff);  // max finite
  EXPECT_EQ(Half(0.0f).bits(), 0x0000);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(fp16_round(70000.0f)));
  EXPECT_TRUE(std::isinf(fp16_round(-70000.0f)));
  EXPECT_LT(fp16_round(-70000.0f), 0.0f);
}

TEST(Half, SubnormalRange) {
  const float tiny = std::ldexp(1.0f, -24);  // smallest positive subnormal
  EXPECT_EQ(fp16_round(tiny), tiny);
  EXPECT_EQ(fp16_round(tiny / 2.0f), 0.0f);  // underflow
}

TEST(Half, NanPreserved) {
  EXPECT_TRUE(std::isnan(fp16_round(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Half, InfinityPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(fp16_round(inf)));
  EXPECT_TRUE(std::isinf(fp16_round(-inf)));
}

TEST(Half, RoundTripIsIdempotent) {
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const float f = (rng.next_float() - 0.5f) * 100.0f;
    const float once = fp16_round(f);
    EXPECT_EQ(fp16_round(once), once);
  }
}

TEST(Half, RelativeErrorBound) {
  // binary16 has 11 significand bits: relative error <= 2^-11 for normals.
  Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    const float f = 0.1f + rng.next_float() * 1000.0f;
    const float r = fp16_round(f);
    EXPECT_LE(std::fabs(r - f) / f, 1.0f / 2048.0f + 1e-7f) << f;
  }
}

TEST(Half, RoundToNearestEven) {
  // 2049 is halfway between 2048 and 2050 -> ties to even mantissa (2048).
  EXPECT_EQ(fp16_round(2049.0f), 2048.0f);
  EXPECT_EQ(fp16_round(2051.0f), 2052.0f);
}

TEST(Half, MonotoneOnSamples) {
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const float a = (rng.next_float() - 0.5f) * 200.0f;
    const float b = a + rng.next_float() * 10.0f;
    EXPECT_LE(fp16_round(a), fp16_round(b));
  }
}

}  // namespace
}  // namespace hack
