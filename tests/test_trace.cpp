#include <gtest/gtest.h>

#include "base/check.h"
#include "workload/trace.h"

namespace hack {
namespace {

TEST(Trace, RecordSerializeParseRoundTrip) {
  Rng rng(1);
  const Trace original =
      Trace::record(dataset_by_name("Cocktail"), 0.1, 25, rng);
  const Trace replayed = Trace::parse(original.serialize());
  EXPECT_TRUE(original == replayed);
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  const Trace t = Trace::parse(
      "# header comment\n"
      "\n"
      "1.5 100 20\n"
      "  # indented comment\n"
      "2.5 200 40\n");
  ASSERT_EQ(t.requests.size(), 2u);
  EXPECT_DOUBLE_EQ(t.requests[0].time, 1.5);
  EXPECT_DOUBLE_EQ(t.requests[1].shape.input_tokens, 200.0);
}

TEST(Trace, MalformedLineThrows) {
  EXPECT_THROW(Trace::parse("1.5 abc 20\n"), CheckError);
  EXPECT_THROW(Trace::parse("1.5 100\n"), CheckError);
}

TEST(Trace, OutOfOrderArrivalsRejected) {
  EXPECT_THROW(Trace::parse("2.0 100 20\n1.0 100 20\n"), CheckError);
}

TEST(Trace, NonPositiveLengthsRejected) {
  EXPECT_THROW(Trace::parse("1.0 0 20\n"), CheckError);
  EXPECT_THROW(Trace::parse("1.0 100 0\n"), CheckError);
}

TEST(Trace, EmptyTraceIsValid) {
  EXPECT_TRUE(Trace::parse("# nothing\n").requests.empty());
}

TEST(Trace, PrecisionPreserved) {
  // Full double precision survives the text round trip.
  Trace t;
  t.requests.push_back(
      {.time = 1.0 / 3.0, .shape = {.input_tokens = 7, .output_tokens = 3}});
  const Trace round = Trace::parse(t.serialize());
  EXPECT_DOUBLE_EQ(round.requests[0].time, 1.0 / 3.0);
}

}  // namespace
}  // namespace hack
