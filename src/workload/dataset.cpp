#include "workload/dataset.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace hack {

const std::vector<DatasetSpec>& dataset_zoo() {
  static const std::vector<DatasetSpec> zoo = {
      {.name = "IMDb",
       .input = {.avg = 315, .min = 106, .max = 821},
       .output = {.avg = 37, .min = 16, .max = 87}},
      {.name = "arXiv",
       .input = {.avg = 6300, .min = 1600, .max = 14100},
       .output = {.avg = 243, .min = 29, .max = 464}},
      {.name = "Cocktail",
       .input = {.avg = 16200, .min = 9400, .max = 28800},
       .output = {.avg = 159, .min = 44, .max = 246}},
      {.name = "HumanEval",
       .input = {.avg = 204, .min = 75, .max = 697},
       .output = {.avg = 139, .min = 11, .max = 552}},
  };
  return zoo;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  for (const DatasetSpec& d : dataset_zoo()) {
    if (d.name == name) return d;
  }
  HACK_CHECK(false, "unknown dataset: " << name);
  return dataset_zoo().front();
}

double sample_length(const LengthStats& stats, Rng& rng) {
  HACK_CHECK(stats.min <= stats.avg && stats.avg <= stats.max,
             "inconsistent length stats");
  // Log-normal with median below the mean (right-skew typical of text
  // lengths): sigma from the max/avg spread, mu so the mean matches avg.
  const double spread = std::max(1.5, stats.max / std::max(1.0, stats.avg));
  const double sigma = std::min(0.9, 0.35 * std::log(spread));
  const double mu = std::log(stats.avg) - 0.5 * sigma * sigma;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = std::exp(mu + sigma * rng.next_gaussian());
    if (x >= stats.min && x <= stats.max) {
      return std::floor(x);
    }
  }
  // Degenerate stats: fall back to the clamped mean.
  return std::clamp(stats.avg, stats.min, stats.max);
}

RequestShape sample_request(const DatasetSpec& dataset, Rng& rng) {
  return {.input_tokens = sample_length(dataset.input, rng),
          .output_tokens = std::max(1.0, sample_length(dataset.output, rng))};
}

}  // namespace hack
