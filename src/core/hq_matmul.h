// Homomorphic quantized matrix multiplication — the paper's core contribution.
//
// For C = A·B with both operands quantized per-partition (§5.2, Eq. 4):
//
//   C[i,j] = Σ_g ( s_a[i,g]·s_b[j,g]·Σ_{z∈g} a'b'     <- integer GEMM
//                + m_b[j,g]·s_a[i,g]·Σ_{z∈g} a'       <- A code row-sums
//                + m_a[i,g]·s_b[j,g]·Σ_{z∈g} b'       <- B code col-sums (SE)
//                + |g|·m_a[i,g]·m_b[j,g] )
//
// The integer GEMM runs on the codes (INT8 path); the three affine terms
// "approximate the quantized output into the real output" without ever
// materializing dequantized operands. Passing a prebuilt SumCache for B
// enables summation elimination: the Σ b' term is read instead of recomputed,
// reducing the approximation cost from 9MN + MZ + NZ to 9MN + MZ flops.
//
// Engine: the hot path is a blocked, multithreaded kernel. Per partition g
// the integer part runs through the register-blocked CodeView kernels in
// core/int_gemm.h, and the Eq. (4) correction collapses to
//
//   C[i,j] += A1[i]·B1[j]·dot + A2[i]·B2[j] + A3[i]·B3[j]
//
// with the per-(i,g) factors A1 = s_a, A2 = s_a·Σa', A3 = m_a and the
// per-(j,g) factors B1 = s_b, B2 = m_b, B3 = s_b·Σb' + |g|·m_b hoisted out of
// the inner loop. The M dimension splits into row bands dispatched on the
// shared ThreadPool; a single-row A (the decode GEMV case) bypasses the pool
// entirely. `hq_matmul_reference` keeps the original scalar triple loop for
// equivalence tests and old-vs-new benchmarking.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/sum_cache.h"
#include "quant/quantizer.h"
#include "tensor/matrix.h"

namespace hack {

// Sentinel for "the whole KV extent" in the tile-view parameters below.
inline constexpr std::size_t kKvRangeFull = static_cast<std::size_t>(-1);

// One absolutely-aligned segment of a KV tile: contraction positions
// [begin, end) (absolute token indices), lying entirely inside B partition
// group `group`. `whole_group` marks segments that cover their group exactly,
// whose Σ b' can be read from a SumCache; partial segments (a tile boundary
// cut through the group) recompute the segment sum from the codes.
struct KvSegment {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t group = 0;
  bool whole_group = false;
};

// Splits the KV tile [k_begin, k_end) at the absolute partition boundaries of
// a col-axis quantized store with `rows` token rows and partition size `pi`
// (the final group may be ragged, as in the RQE-off spliced V store). The
// returned segments tile [k_begin, k_end) exactly, in order.
std::vector<KvSegment> kv_tile_segments(std::size_t k_begin, std::size_t k_end,
                                        std::size_t rows, std::size_t pi);

// Operation counters filled by the HQ kernels; tests pin these against the
// closed-form costs in core/cost_model.h.
struct HqStats {
  std::int64_t int_macs = 0;      // integer multiply-accumulates (code GEMM)
  std::int64_t approx_flops = 0;  // float ops spent on the Eq. (4) correction
  std::int64_t sum_flops = 0;     // adds spent computing Σ b' (0 when cached)
};

// `threads` for the calls below: 0 = auto (one row band per lane of the
// global ThreadPool, itself sized by HACK_NUM_THREADS / the hardware),
// 1 = serial, N = split into N row bands. The band decomposition — and hence
// the float result — depends only on the requested count, not on how many
// worker threads actually exist.

// C = A·B. A must be row-axis quantized (M x Z), B col-axis (Z x N), with
// identical partition size. `b_sums`, when provided, must match B.
Matrix hq_matmul(const QuantizedMatrix& a, const QuantizedMatrix& b,
                 const SumCache* b_sums = nullptr, HqStats* stats = nullptr,
                 int threads = 0);

// C = A·Bᵀ. A row-axis (M x Z), B row-axis (N x Z) — the Q·Kᵀ form where K
// stores one token per row. `b_sums`, when provided, must match B.
Matrix hq_matmul_nt(const QuantizedMatrix& a, const QuantizedMatrix& b,
                    const SumCache* b_sums = nullptr, HqStats* stats = nullptr,
                    int threads = 0);

// One C = A·B (or A·Bᵀ) problem of a batched launch. Shapes follow the
// single-call contracts above; `c` is resized and filled by the call, `stats`
// (optional) receives this task's counters. When several tasks share the same
// (b, b_sums) pair — GQA query heads attending one KV head — the hoisted
// Eq. (4) B factors are prepared once, and any Σ b' recompute cost is charged
// to the first task using that pair.
//
// `[k_begin, k_end)` is the KV tile view over B's token rows (kKvRangeFull =
// no tiling, the PR 2 contract):
//   - NT (Q·Kᵀ): restricts the score columns — C becomes M x (k_end -
//     k_begin), the tile of the score matrix against K rows [k_begin, k_end).
//     A is unchanged (its partitions run along d_head, never cut by the KV
//     dimension), and the shared B prep still covers all of B.
//   - NN (P·V): restricts the contraction — A must be M x (k_end - k_begin)
//     with its metadata laid out per kv_tile_segments(k_begin, k_end, b.rows,
//     b.pi) segment ([row * segments + seg], ragged head group allowed), so
//     every A partition lines up with one absolute B group. C stays M x N.
//     Whole-group segments read Σ b' from `b_sums`; partial ones recompute it
//     (charged to the task's sum_flops).
struct HqGemmTask {
  const QuantizedMatrix* a = nullptr;
  const QuantizedMatrix* b = nullptr;
  const SumCache* b_sums = nullptr;
  Matrix* c = nullptr;
  HqStats* stats = nullptr;
  std::size_t k_begin = 0;
  std::size_t k_end = kKvRangeFull;
};

// Batched heads-in-one-launch variants: every task's M dimension splits into
// row bands and all (task × band) work items are dispatched through a single
// parallel_for on the shared ThreadPool, so many small matmuls (one per
// attention head of a layer) fill the pool instead of paying one dispatch
// each. Single-row tasks get exactly one work item — the batched decode GEMV
// path. Results are bit-identical to the equivalent single calls for any
// thread count.
void hq_matmul_batched(std::span<HqGemmTask> tasks, int threads = 0);
void hq_matmul_nt_batched(std::span<HqGemmTask> tasks, int threads = 0);

// ---- streaming-attention building blocks -----------------------------------
// The tiled softmax engine in attention/layer_attention.cpp walks KV tiles
// inside one pool work item, so it needs the Eq. (4) machinery exposed at a
// finer grain than a whole hq_matmul call: a reusable B-side prep, hoisted
// A row sums, and per-tile score / accumulate kernels.

// Opaque hoisted NT B-side prep (the Q·Kᵀ factors of one KV head): built once
// per (K, SumCache) pair and reused across GQA query heads and every KV tile.
// sum_flops() reports the Σ b' adds paid at build time when no SumCache was
// given (charge it once per prep, not per tile).
class HqNtPrep {
 public:
  HqNtPrep(const QuantizedMatrix& b, const SumCache* b_sums);
  ~HqNtPrep();
  HqNtPrep(HqNtPrep&&) noexcept;
  HqNtPrep& operator=(HqNtPrep&&) noexcept;

  std::size_t n() const;          // B token rows
  std::int64_t sum_flops() const;

  struct Impl;
  const Impl& impl() const { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

// Σ a' per (row, group) of a row-axis quantized A, contiguous
// [row * group_count + group] — hoisted out of the tile loop so the per-tile
// correction never re-reduces the Q codes.
std::vector<std::int32_t> hq_a_row_sums(const QuantizedMatrix& a);

// Score tile: overwrites out[(i - r0) * (k_end - k_begin) + (j - k_begin)]
// with Eq. (4)(A·Bᵀ)[i, j] for rows [r0, r1) and B token rows
// [k_begin, k_end). `a_sums` is hq_a_row_sums(a). Bit-identical to the
// corresponding columns of a full hq_matmul_nt call.
void hq_nt_score_tile(const QuantizedMatrix& a, const HqNtPrep& prep,
                      std::span<const std::int32_t> a_sums, std::size_t r0,
                      std::size_t r1, std::size_t k_begin, std::size_t k_end,
                      float* out);

// Precomputed Σ b' per (segment, column) of one KV tile — shared across row
// bands and across the GQA query heads reading one KV head. Whole-group
// segments read the SumCache when given; boundary-cut segments (and every
// segment when `b_sums` is null, the RQE-off spliced store) are reduced from
// the codes once, with the add count recorded in sum_flops for SE-off
// accounting.
struct KvTileBSums {
  std::vector<std::int32_t> sums;  // [seg * b.cols + j]
  std::int64_t sum_flops = 0;
};
KvTileBSums kv_tile_b_sums(const QuantizedMatrix& b, const SumCache* b_sums,
                           std::span<const KvSegment> segments);

// P·V tile: accumulates out[i * b.cols + j] += Eq. (4)(A_tile ·
// B[k_begin:k_end, :]) where A_tile is a [rows x (k_end - k_begin)] code
// block (tile-relative columns) quantized per `segments`
// (= kv_tile_segments(k_begin, k_end, b.rows, b.pi)); `a_mins` / `a_scales` /
// `a_code_sums` are indexed [row * segments.size() + seg] and `b_seg_sums`
// is kv_tile_b_sums(b, ..., segments).
void hq_nn_tile_accumulate(const std::uint8_t* a_codes, std::size_t a_rows,
                           std::span<const float> a_mins,
                           std::span<const float> a_scales,
                           std::span<const std::int32_t> a_code_sums,
                           const QuantizedMatrix& b,
                           std::span<const KvSegment> segments,
                           std::span<const std::int32_t> b_seg_sums,
                           std::size_t k_begin, std::size_t k_end, float* out);

// The original scalar Eq. (4) triple loop (seed implementation), kept as the
// ground truth for randomized equivalence tests and as the baseline leg of
// the kernel microbenchmarks. Same contracts and HqStats accounting as the
// blocked engine.
Matrix hq_matmul_reference(const QuantizedMatrix& a, const QuantizedMatrix& b,
                           const SumCache* b_sums = nullptr,
                           HqStats* stats = nullptr);
Matrix hq_matmul_nt_reference(const QuantizedMatrix& a,
                              const QuantizedMatrix& b,
                              const SumCache* b_sums = nullptr,
                              HqStats* stats = nullptr);

}  // namespace hack
