#include <gtest/gtest.h>

#include "kvcache/quantized_cache.h"

namespace hack {
namespace {

HackAttentionConfig small_config() {
  HackAttentionConfig c;
  c.pi = 16;
  return c;
}

std::vector<Matrix> head_matrices(std::size_t count, std::size_t tokens,
                                  std::size_t d_head, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> ms;
  ms.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ms.push_back(Matrix::random_gaussian(tokens, d_head, rng));
  }
  return ms;
}

TEST(QuantizedKvCache, AdmitAndAppend) {
  QuantizedKvCache cache(2, 2, 32, small_config(), 1 << 20);
  ASSERT_TRUE(cache.admit(1));
  EXPECT_TRUE(cache.resident(1));
  Rng rng(1);
  cache.append_tokens(1, head_matrices(4, 16, 32, 2),
                      head_matrices(4, 16, 32, 3), rng);
  EXPECT_EQ(cache.state(1, 0, 0).tokens(), 16u);
  EXPECT_EQ(cache.state(1, 1, 1).tokens(), 16u);
  EXPECT_GT(cache.usage(1).packed_kv_bytes, 0u);
}

TEST(QuantizedKvCache, UsageBreakdownCategories) {
  QuantizedKvCache cache(1, 1, 32, small_config(), 1 << 20);
  ASSERT_TRUE(cache.admit(1));
  Rng rng(4);
  // 20 tokens with Π=16: one quantized partition + 4-token FP16 tail.
  cache.append_tokens(1, head_matrices(1, 20, 32, 5),
                      head_matrices(1, 20, 32, 6), rng);
  const QuantizedCacheUsage u = cache.usage(1);
  EXPECT_GT(u.packed_kv_bytes, 0u);
  EXPECT_GT(u.sum_cache_bytes, 0u);
  EXPECT_EQ(u.fp16_tail_bytes, 4u * 32u * 2u);
  EXPECT_EQ(u.total(),
            u.packed_kv_bytes + u.sum_cache_bytes + u.fp16_tail_bytes);
}

TEST(QuantizedKvCache, BudgetBlocksAdmission) {
  QuantizedKvCache cache(1, 1, 32, small_config(), /*budget=*/512);
  ASSERT_TRUE(cache.admit(1));
  Rng rng(7);
  cache.append_tokens(1, head_matrices(1, 64, 32, 8),
                      head_matrices(1, 64, 32, 9), rng);
  ASSERT_GT(cache.gpu_bytes_in_use(), 512u);
  EXPECT_FALSE(cache.admit(2));  // over budget -> swap to CPU (caller-side)
  cache.drop(1);
  EXPECT_TRUE(cache.admit(2));
}

TEST(QuantizedKvCache, TotalUsageSumsSequences) {
  QuantizedKvCache cache(1, 2, 32, small_config(), 1 << 20);
  ASSERT_TRUE(cache.admit(1));
  ASSERT_TRUE(cache.admit(2));
  Rng rng(10);
  cache.append_tokens(1, head_matrices(2, 16, 32, 11),
                      head_matrices(2, 16, 32, 12), rng);
  cache.append_tokens(2, head_matrices(2, 32, 32, 13),
                      head_matrices(2, 32, 32, 14), rng);
  EXPECT_EQ(cache.total_usage().total(),
            cache.usage(1).total() + cache.usage(2).total());
}

TEST(QuantizedKvCache, MisuseThrows) {
  QuantizedKvCache cache(1, 1, 32, small_config(), 1 << 20);
  EXPECT_THROW(cache.state(1, 0, 0), CheckError);  // not admitted
  ASSERT_TRUE(cache.admit(1));
  EXPECT_THROW(cache.admit(1), CheckError);        // double admit
  EXPECT_THROW(cache.state(1, 1, 0), CheckError);  // layer out of range
  Rng rng(15);
  EXPECT_THROW(cache.append_tokens(1, head_matrices(2, 4, 32, 16),
                                   head_matrices(2, 4, 32, 17), rng),
               CheckError);                        // wrong head count
  EXPECT_THROW(cache.drop(9), CheckError);
}

}  // namespace
}  // namespace hack
