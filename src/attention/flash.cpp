#include "attention/flash.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace hack {

Matrix attention_flash(const Matrix& q, const Matrix& k, const Matrix& v,
                       const FlashOptions& options) {
  HACK_CHECK(q.cols() == k.cols(), "Q/K head dim mismatch");
  HACK_CHECK(k.rows() == v.rows(), "K/V token count mismatch");
  HACK_CHECK(options.tile_tokens > 0, "tile size must be positive");

  const std::size_t lq = q.rows();
  const std::size_t lkv = k.rows();
  const std::size_t d = q.cols();
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));

  Matrix out(lq, d, 0.0f);
  std::vector<float> row_max(lq, -std::numeric_limits<float>::infinity());
  std::vector<float> row_denom(lq, 0.0f);

  std::vector<float> tile_scores;
  for (std::size_t tile = 0; tile < lkv; tile += options.tile_tokens) {
    const std::size_t tile_end = std::min(lkv, tile + options.tile_tokens);
    const std::size_t tile_len = tile_end - tile;
    tile_scores.assign(lq * tile_len, 0.0f);

    for (std::size_t i = 0; i < lq; ++i) {
      const std::size_t visible =
          options.causal ? options.key_offset + i + 1 : lkv;
      if (visible <= tile) continue;  // whole tile masked for this row

      // Scores for this row against the tile.
      const std::size_t local_end = std::min(tile_end, visible);
      float tile_max = -std::numeric_limits<float>::infinity();
      for (std::size_t t = tile; t < local_end; ++t) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < d; ++c) {
          acc += q(i, c) * k(t, c);
        }
        acc *= inv_sqrt_d;
        tile_scores[i * tile_len + (t - tile)] = acc;
        tile_max = std::max(tile_max, acc);
      }

      // Online softmax update: rescale previous accumulators by
      // exp(old_max - new_max) before folding in the new tile.
      const float new_max = std::max(row_max[i], tile_max);
      const float correction = std::exp(row_max[i] - new_max);
      row_denom[i] *= correction;
      for (std::size_t c = 0; c < d; ++c) {
        out(i, c) *= correction;
      }
      for (std::size_t t = tile; t < local_end; ++t) {
        const float w =
            std::exp(tile_scores[i * tile_len + (t - tile)] - new_max);
        row_denom[i] += w;
        for (std::size_t c = 0; c < d; ++c) {
          out(i, c) += w * v(t, c);
        }
      }
      row_max[i] = new_max;
    }
  }

  for (std::size_t i = 0; i < lq; ++i) {
    HACK_CHECK(row_denom[i] > 0.0f, "row " << i << " attended to no keys");
    for (std::size_t c = 0; c < d; ++c) {
      out(i, c) /= row_denom[i];
    }
  }
  return out;
}

}  // namespace hack
