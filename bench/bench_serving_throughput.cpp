// Serving-shape throughput of the batched multi-head HQ-attention engine:
// per-layer prefill and decode latency / tokens-per-second at realistic GQA
// shapes (default 32 query heads over 8 KV heads, d_head 128), comparing one
// HackLayerKvState batched launch against the pre-batching per-head loop
// (append per KV head, then one hack_attention per query head).
//
// Emits one JSON line per (context, threads) leg:
//
//   {"bench":"serving_layer_prefill","heads":32,"kv_heads":8,"d_head":128,
//    "context":4096,"threads":4,"lanes":4,"batched_ms":...,
//    "per_head_1t_ms":...,"batched_tokens_per_s":...,
//    "speedup_vs_per_head_1t":...,"wire_bytes":...}
//   {"bench":"serving_layer_decode",...,"batched_ms":...,"per_head_1t_ms":...,
//    "batched_tokens_per_s":...,"speedup_vs_per_head_1t":...}
//
// `per_head_1t_ms` is the serial per-head loop (threads=1) — the honest
// baseline for "what one layer cost before batching". `speedup_vs_per_head_1t`
// therefore folds in both the head-level parallelism (bounded by the machine's
// cores / HACK_NUM_THREADS) and the fused-launch savings; `lanes` records how
// many pool lanes actually existed so a 1-core CI box is readable as such.
//
// `--long` runs the streaming-softmax long-context sweep instead (default
// ctx 4096/16384 at 32Q/8KV heads, d_head 128, auto threads): tiled prefill
// tokens/s plus the modeled peak attention working-set bytes per layer of
// the tiled engine vs the PR 2 untiled engine (full per-head score buffers,
// 96 MiB head chunking), one JSON line per context:
//
//   {"bench":"serving_longctx_prefill","context":16384,...,"tile":1600,
//    "batched_ms":...,"batched_tokens_per_s":...,"tiled_ws_bytes":...,
//    "untiled_ws_bytes":...,"ws_shrink":...,"peak_rss_mib":...}
//
// Usage: bench_serving_throughput [--quick] [--long] [--context=1024,4096]
//                                 [--threads=1,2,4] [--heads=32] [--kv-heads=8]
//   --quick shrinks to context 512 / threads {1,2} for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "attention/hack_attention.h"
#include "attention/layer_attention.h"
#include "base/thread_pool.h"
#include "tensor/ops.h"

namespace {

using namespace hack;

struct Shape {
  std::size_t heads = 32;
  std::size_t kv_heads = 8;
  std::size_t d_head = 128;
  std::size_t pi = 64;
};

struct Inputs {
  Matrix q_all, k_all, v_all;
};

Inputs make_inputs(const Shape& s, std::size_t tokens, std::uint64_t seed) {
  Rng rng(seed);
  return {Matrix::random_gaussian(tokens, s.heads * s.d_head, rng),
          Matrix::random_gaussian(tokens, s.kv_heads * s.d_head, rng),
          Matrix::random_gaussian(tokens, s.kv_heads * s.d_head, rng)};
}

HackAttentionConfig make_config(const Shape& s, int threads) {
  HackAttentionConfig cfg;
  cfg.pi = s.pi;
  cfg.threads = threads;
  return cfg;
}

double time_best_ms(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

// The pre-batching model path for one layer: per-KV-head states appended and
// attended in a serial query-head loop.
struct PerHeadLayer {
  Shape shape;
  std::vector<HackKvState> states;
  std::vector<Rng> rngs;

  PerHeadLayer(const Shape& s, const HackAttentionConfig& cfg,
               std::uint64_t seed)
      : shape(s) {
    for (std::size_t h = 0; h < s.kv_heads; ++h) {
      states.emplace_back(s.d_head, cfg);
      rngs.emplace_back(seed + h);
    }
  }

  void append(const Inputs& in) {
    const std::size_t d = shape.d_head;
    for (std::size_t h = 0; h < shape.kv_heads; ++h) {
      states[h].append_tokens(take_cols(in.k_all, h * d, (h + 1) * d),
                              take_cols(in.v_all, h * d, (h + 1) * d),
                              rngs[h]);
    }
  }

  void attend(const Inputs& in, std::size_t key_offset) {
    const std::size_t d = shape.d_head;
    const std::size_t group = shape.heads / shape.kv_heads;
    for (std::size_t g = 0; g < shape.kv_heads; ++g) {
      for (std::size_t sub = 0; sub < group; ++sub) {
        const std::size_t head = g * group + sub;
        const Matrix o = hack_attention(
            take_cols(in.q_all, head * d, (head + 1) * d), states[g],
            {.causal = true, .key_offset = key_offset}, rngs[g]);
        (void)o;
      }
    }
  }
};

void run_prefill_legs(const Shape& shape, std::size_t context,
                      const std::vector<int>& thread_legs) {
  const Inputs in = make_inputs(shape, context, 1234);
  const int reps = context >= 2048 ? 1 : 2;
  const std::size_t lanes = ThreadPool::global().lanes();

  // Serial per-head baseline, measured once per context.
  const HackAttentionConfig cfg_1t = make_config(shape, 1);
  const double per_head_1t_ms = time_best_ms(
      [&] {
        PerHeadLayer layer(shape, cfg_1t, 7);
        layer.append(in);
        layer.attend(in, 0);
      },
      reps);

  std::size_t wire_bytes = 0;
  for (const int threads : thread_legs) {
    const HackAttentionConfig cfg = make_config(shape, threads);
    const double batched_ms = time_best_ms(
        [&] {
          HackLayerKvState layer(shape.d_head, shape.kv_heads, shape.heads,
                                 cfg, 7);
          (void)layer.prefill(in.q_all, in.k_all, in.v_all);
          wire_bytes = layer.wire_bytes();
        },
        reps);
    std::printf(
        "{\"bench\":\"serving_layer_prefill\",\"heads\":%zu,\"kv_heads\":%zu,"
        "\"d_head\":%zu,\"pi\":%zu,\"context\":%zu,\"threads\":%d,"
        "\"lanes\":%zu,\"batched_ms\":%.2f,\"per_head_1t_ms\":%.2f,"
        "\"batched_tokens_per_s\":%.1f,\"speedup_vs_per_head_1t\":%.2f,"
        "\"wire_bytes\":%zu}\n",
        shape.heads, shape.kv_heads, shape.d_head, shape.pi, context, threads,
        lanes, batched_ms, per_head_1t_ms,
        1000.0 * static_cast<double>(context) / batched_ms,
        per_head_1t_ms / batched_ms, wire_bytes);
    std::fflush(stdout);
  }
}

void run_decode_legs(const Shape& shape, std::size_t context,
                     const std::vector<int>& thread_legs) {
  const std::size_t steps = 16;
  const std::size_t lanes = ThreadPool::global().lanes();

  // Per-head baseline: prefill untimed, then `steps` single-token decodes.
  const Inputs prompt = make_inputs(shape, context, 1234);
  const HackAttentionConfig cfg_1t = make_config(shape, 1);
  PerHeadLayer per_head(shape, cfg_1t, 7);
  per_head.append(prompt);
  std::vector<Inputs> tokens;
  tokens.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    tokens.push_back(make_inputs(shape, 1, 9000 + t));
  }
  const double per_head_1t_ms =
      time_best_ms(
          [&] {
            for (std::size_t t = 0; t < steps; ++t) {
              per_head.append(tokens[t]);
              per_head.attend(tokens[t], per_head.states[0].tokens() - 1);
            }
          },
          1) /
      static_cast<double>(steps);

  for (const int threads : thread_legs) {
    const HackAttentionConfig cfg = make_config(shape, threads);
    HackLayerKvState layer(shape.d_head, shape.kv_heads, shape.heads, cfg, 7);
    (void)layer.prefill(prompt.q_all, prompt.k_all, prompt.v_all);
    const double batched_ms =
        time_best_ms(
            [&] {
              for (std::size_t t = 0; t < steps; ++t) {
                (void)layer.decode_step(tokens[t].q_all, tokens[t].k_all,
                                        tokens[t].v_all);
              }
            },
            1) /
        static_cast<double>(steps);
    std::printf(
        "{\"bench\":\"serving_layer_decode\",\"heads\":%zu,\"kv_heads\":%zu,"
        "\"d_head\":%zu,\"pi\":%zu,\"context\":%zu,\"threads\":%d,"
        "\"lanes\":%zu,\"batched_ms\":%.3f,\"per_head_1t_ms\":%.3f,"
        "\"batched_tokens_per_s\":%.1f,\"speedup_vs_per_head_1t\":%.2f}\n",
        shape.heads, shape.kv_heads, shape.d_head, shape.pi, context, threads,
        lanes, batched_ms, per_head_1t_ms, 1000.0 / batched_ms,
        per_head_1t_ms / batched_ms);
    std::fflush(stdout);
  }
}

double peak_rss_mib() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss is KiB
}

// Long-context streaming prefill: tiled tokens/s plus the modeled per-layer
// peak attention working set, tiled vs the PR 2 untiled engine. The untiled
// leg is not run (at 16k it would materialize a 2.3 GiB score buffer per
// head); its working set comes from the retired engine's chunking model.
void run_longctx_legs(const Shape& shape,
                      const std::vector<std::size_t>& contexts) {
  const std::size_t lanes = ThreadPool::global().lanes();
  for (const std::size_t context : contexts) {
    const Inputs in = make_inputs(shape, context, 1234);
    const HackAttentionConfig cfg = make_config(shape, /*threads=*/0);
    const std::size_t tile = attention_tile_tokens(cfg, context);
    double batched_ms = 0.0;
    {
      const auto start = std::chrono::steady_clock::now();
      HackLayerKvState layer(shape.d_head, shape.kv_heads, shape.heads, cfg,
                             7);
      (void)layer.prefill(in.q_all, in.k_all, in.v_all);
      const auto stop = std::chrono::steady_clock::now();
      batched_ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
    }
    const std::size_t tiled_ws = tiled_attention_working_set_bytes(
        context, context, shape.heads, shape.d_head, tile, lanes);
    const std::size_t untiled_ws =
        untiled_attention_working_set_bytes(context, context, shape.heads);
    std::printf(
        "{\"bench\":\"serving_longctx_prefill\",\"heads\":%zu,"
        "\"kv_heads\":%zu,\"d_head\":%zu,\"pi\":%zu,\"context\":%zu,"
        "\"lanes\":%zu,\"tile\":%zu,\"batched_ms\":%.2f,"
        "\"batched_tokens_per_s\":%.1f,\"tiled_ws_bytes\":%zu,"
        "\"untiled_ws_bytes\":%zu,\"ws_shrink\":%.1f,\"peak_rss_mib\":%.1f}\n",
        shape.heads, shape.kv_heads, shape.d_head, shape.pi, context, lanes,
        tile, batched_ms,
        1000.0 * static_cast<double>(context) / batched_ms, tiled_ws,
        untiled_ws,
        static_cast<double>(untiled_ws) / static_cast<double>(tiled_ws),
        peak_rss_mib());
    std::fflush(stdout);
  }
}

std::vector<std::size_t> parse_size_list(const char* s) {
  std::vector<std::size_t> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p) break;
    out.push_back(static_cast<std::size_t>(v));
    p = *end == ',' ? end + 1 : end;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Shape shape;
  std::vector<std::size_t> contexts = {1024, 4096};
  std::vector<int> thread_legs = {1, 2, 4};
  bool long_sweep = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      contexts = {512};
      thread_legs = {1, 2};
    } else if (arg == "--long") {
      long_sweep = true;
    } else if (arg.rfind("--context=", 0) == 0) {
      contexts = parse_size_list(arg.c_str() + 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_legs.clear();
      for (const std::size_t t : parse_size_list(arg.c_str() + 10)) {
        thread_legs.push_back(static_cast<int>(t));
      }
    } else if (arg.rfind("--heads=", 0) == 0) {
      shape.heads = std::strtoul(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--kv-heads=", 0) == 0) {
      shape.kv_heads = std::strtoul(arg.c_str() + 11, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (shape.heads == 0 || shape.kv_heads == 0 ||
      shape.heads % shape.kv_heads != 0) {
    std::fprintf(stderr, "heads must be a positive multiple of kv_heads\n");
    return 1;
  }
  if (contexts.empty() || thread_legs.empty()) {
    std::fprintf(stderr, "--context and --threads need at least one value\n");
    return 1;
  }

  if (long_sweep) {
    std::vector<std::size_t> long_contexts = contexts;
    if (long_contexts == std::vector<std::size_t>{1024, 4096}) {
      long_contexts = {4096, 16384};  // default --long sweep
    }
    std::printf("streaming-softmax long-context prefill: %zu query heads / "
                "%zu KV heads, d_head %zu, pool lanes %zu\n",
                shape.heads, shape.kv_heads, shape.d_head,
                ThreadPool::global().lanes());
    run_longctx_legs(shape, long_contexts);
    return 0;
  }

  std::printf("batched layer vs per-head loop: %zu query heads / %zu KV heads"
              ", d_head %zu, pool lanes %zu\n",
              shape.heads, shape.kv_heads, shape.d_head,
              ThreadPool::global().lanes());
  for (const std::size_t context : contexts) {
    run_prefill_legs(shape, context, thread_legs);
    run_decode_legs(shape, context, thread_legs);
  }
  return 0;
}
