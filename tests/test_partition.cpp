#include <gtest/gtest.h>

#include "quant/partition.h"

namespace hack {
namespace {

TEST(PartitionScheme, EvenSplit) {
  const PartitionScheme scheme(128, 32, /*allow_ragged_tail=*/false);
  EXPECT_EQ(scheme.group_count(), 4u);
  EXPECT_EQ(scheme.group_begin(0), 0u);
  EXPECT_EQ(scheme.group_end(0), 32u);
  EXPECT_EQ(scheme.group_begin(3), 96u);
  EXPECT_EQ(scheme.group_end(3), 128u);
  EXPECT_EQ(scheme.group_size(2), 32u);
}

TEST(PartitionScheme, RaggedTail) {
  const PartitionScheme scheme(100, 32, /*allow_ragged_tail=*/true);
  EXPECT_EQ(scheme.group_count(), 4u);
  EXPECT_EQ(scheme.group_size(3), 4u);
  EXPECT_EQ(scheme.group_end(3), 100u);
}

TEST(PartitionScheme, RaggedDisallowedThrows) {
  EXPECT_THROW(PartitionScheme(100, 32, false), CheckError);
}

TEST(PartitionScheme, GroupOfMapsIndices) {
  const PartitionScheme scheme(96, 16, false);
  EXPECT_EQ(scheme.group_of(0), 0u);
  EXPECT_EQ(scheme.group_of(15), 0u);
  EXPECT_EQ(scheme.group_of(16), 1u);
  EXPECT_EQ(scheme.group_of(95), 5u);
  EXPECT_THROW(scheme.group_of(96), CheckError);
}

TEST(PartitionScheme, PiMustBeMultipleOf16) {
  // §5.3: Π must be a multiple of 16 for GPU tile alignment.
  EXPECT_THROW(PartitionScheme(64, 8, false), CheckError);
  EXPECT_THROW(PartitionScheme(64, 20, false), CheckError);
  EXPECT_THROW(PartitionScheme(64, 0, false), CheckError);
  EXPECT_NO_THROW(PartitionScheme(64, 16, false));
  EXPECT_NO_THROW(PartitionScheme(128, 64, false));
}

TEST(PartitionScheme, PiLargerThanInnerGivesOneRaggedGroup) {
  const PartitionScheme scheme(40, 64, /*allow_ragged_tail=*/true);
  EXPECT_EQ(scheme.group_count(), 1u);
  EXPECT_EQ(scheme.group_size(0), 40u);
}

TEST(ValidPartitionSize, PaperSizes) {
  EXPECT_TRUE(valid_partition_size(32));
  EXPECT_TRUE(valid_partition_size(64));
  EXPECT_TRUE(valid_partition_size(128));
  EXPECT_FALSE(valid_partition_size(0));
  EXPECT_FALSE(valid_partition_size(24));
}

struct GroupCountCase {
  std::size_t inner;
  std::size_t pi;
  std::size_t expected_groups;
};

class PartitionSweep : public ::testing::TestWithParam<GroupCountCase> {};

TEST_P(PartitionSweep, GroupInvariants) {
  const auto [inner, pi, expected] = GetParam();
  const PartitionScheme scheme(inner, pi, /*allow_ragged_tail=*/true);
  EXPECT_EQ(scheme.group_count(), expected);
  // Groups tile [0, inner) without gaps or overlap.
  std::size_t covered = 0;
  for (std::size_t g = 0; g < scheme.group_count(); ++g) {
    EXPECT_EQ(scheme.group_begin(g), covered);
    covered = scheme.group_end(g);
    EXPECT_GT(scheme.group_size(g), 0u);
  }
  EXPECT_EQ(covered, inner);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, PartitionSweep,
    ::testing::Values(GroupCountCase{128, 32, 4}, GroupCountCase{128, 64, 2},
                      GroupCountCase{128, 128, 1}, GroupCountCase{64, 64, 1},
                      GroupCountCase{65, 64, 2}, GroupCountCase{16, 16, 1},
                      GroupCountCase{1000, 64, 16},
                      GroupCountCase{1024, 16, 64}));

}  // namespace
}  // namespace hack
