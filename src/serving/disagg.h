// Disaggregated prefill → decode serving over the HACK KV wire format.
//
// The paper's headline deployment (§2, §6, §7) runs prefill and decode on
// separate workers and ships the *quantized* KV cache between them. This
// module is that path for the real engine, not the analytical simulator:
//
//   PrefillWorker   runs (optionally chunked) prefill through a
//                   TinyModelSession, emits the first token, and serializes
//                   the per-layer HACK KV state into a KV wire blob
//                   (kvcache/kv_wire.h) — every byte measured, not modeled.
//   DecodeWorker    reserves KV blocks from its own BlockAllocator pool (the
//                   same substrate PagedKvCache rides), rehydrates the blob
//                   into a fresh session, and decodes to completion. The
//                   codes on the wire are the codes attention consumes —
//                   nothing is dequantized or requantized in the handoff, so
//                   generation is bit-identical to the single-node engine
//                   (pinned in tests/test_kv_wire.cpp).
//   DisaggEngine    orchestrates both workers on one timeline: compute is
//                   measured wall-clock, the transfer is the netsim
//                   NCCL-style pipelined model (netsim/transfer.h) over each
//                   worker's NIC — bytes real, timing simulated — and the
//                   prefill worker starts the next request's prompt while
//                   the previous blob is still in flight (transfer overlap,
//                   the NIC busy horizons serialize contending transfers).
//
// The engine is fault-tolerant: a seeded FaultModel (netsim/fault.h) can
// drop, corrupt, or delay transfer chunks and crash either worker at a
// scripted request index, and a RetryPolicy drives the recovery —
// chunk-level retransmit on drop, full-blob retransmit on a wire CRC
// failure (KvWireError) or a decode-worker crash, re-prefill on a
// prefill-worker crash, exponential backoff with Rng jitter between rounds,
// and a per-request transfer deadline. When retries exhaust, the deadline
// passes, or the decode pool rejects admission, the request degrades
// gracefully to a *local* decode on the prefill worker instead of being
// dropped — still bit-identical, since the fallback rehydrates the same
// blob the wire would have carried. tests/test_disagg_faults.cpp pins the
// contract: under any injected schedule that doesn't exhaust retries, every
// request completes bit-identical to the fault-free run and the report's
// fault counters equal the FaultModel's injection ledger exactly.
//
// TTFT here charges what single-node serving never shows: the first token is
// counted as delivered only when the KV blob has landed and rehydrated on the
// decode worker. docs/disaggregation.md walks the format and the contract.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "base/rng.h"
#include "kvcache/block_allocator.h"
#include "kvcache/kv_wire.h"
#include "kvcache/paged_cache.h"
#include "metrics/stats.h"
#include "model/session.h"
#include "netsim/fault.h"
#include "netsim/link.h"
#include "serving/request.h"

namespace hack {

// Bounded-retry recovery policy for the transfer/decode path. One retry
// budget per request covers every recovery round — chunk retransmits,
// full-blob retransmits, worker restarts.
struct RetryPolicy {
  std::size_t max_retries = 3;
  // Backoff before recovery round k (0-based): base · mult^k · (1 + jitter·u)
  // with u drawn from a *per-request* seeded Rng — deterministic per run.
  // Each request's jitter stream is derived from (jitter_seed, arrival-order
  // index) via retry_jitter_rng, so two requests retrying concurrently on
  // different links draw independent, replayable streams: injecting a fault
  // into one request never shifts another request's backoff draws
  // (seed-derivation rule in docs/robustness.md).
  double backoff_base_s = 1e-3;
  double backoff_mult = 2.0;
  double backoff_jitter = 0.5;
  std::uint64_t jitter_seed = 0xB0FF;
  // Wall of simulated time from the first transfer attempt's start to full
  // delivery; exceeded → deadline miss → fallback. 0 disables.
  double transfer_deadline_s = 0.0;
  // Degrade to prefill-worker-local decode instead of dropping the request
  // when retries exhaust / the deadline passes / the decode pool rejects.
  bool fallback_local = true;
};

// The per-request backoff-jitter stream: jitter_seed mixed with the request's
// arrival-order index through the splitmix64 finalizer (index 0 keeps the
// bare seed, so single-request episodes replay PR 6 streams). Shared by
// DisaggEngine and FleetEngine so a request's draws are identical wherever
// it is served.
Rng retry_jitter_rng(const RetryPolicy& policy, std::uint64_t request_index);

struct DisaggConfig {
  // Quantization config shared by both workers — the wire header pins it and
  // rehydration rejects a mismatch.
  HackAttentionConfig attn;
  // Backend factory seed; identical on both workers so the decode-side
  // session is the one the prefill session would have become.
  std::uint64_t backend_seed = 7;
  // Prefill chunking (0 = whole prompt in one pass). Chunks follow the
  // serving scheduler's policy (never a 1-row chunk or remainder), so a
  // chunked prefill here matches the continuous-batching engine's schedule.
  std::size_t prefill_chunk_tokens = 0;
  // NIC line rates for the netsim-timed KV transfer.
  double prefill_nic_gbps = 100.0;
  double decode_nic_gbps = 100.0;
  // Pipelining granularity of the transfer (kv_wire_transfer_chunks).
  std::size_t transfer_chunk_bytes = 1 << 20;
  // Decode-side KV block admission: tokens per accounting block, and the
  // pool size (0 = unlimited, no admission control).
  std::size_t block_tokens = 16;
  std::size_t decode_kv_blocks = 0;
  // Fault injection on the transfer path (default: a perfect wire) and the
  // recovery policy that answers it.
  FaultConfig transfer_faults;
  RetryPolicy retry;
  // Mid-decode checkpoint cadence: every K decoded tokens the decode worker
  // cuts a wire v3 delta (KV entries since the prefill handoff + RNG streams
  // + the decoded suffix) and hands it to the engine's checkpoint sink, which
  // ships it to the standby store over the same faulty link. 0 disables —
  // the pre-checkpoint behavior, byte for byte.
  std::size_t checkpoint_every_tokens = 0;
};

// One cut checkpoint: the v3 delta blob against the request's base (prefill)
// blob, and how many tokens had been decoded at the cut.
struct DecodeCheckpoint {
  std::vector<std::uint8_t> delta;
  std::size_t tokens_decoded = 0;
  KvWireSections sections;
};

// Receives each checkpoint as it is cut, mid-decode. Returning false tells
// the worker to stop decoding at this consistent cut — the proactive-drain
// signal: the engine migrates the request (base + this delta) to a healthy
// replica instead of letting the suspect worker finish.
using CheckpointSink = std::function<bool(DecodeCheckpoint)>;

// Thrown by a worker whose scripted crash fires (inject_crash). The engine
// catches it and re-runs the failed stage under the RetryPolicy.
struct WorkerCrash : public std::runtime_error {
  explicit WorkerCrash(const std::string& what) : std::runtime_error(what) {}
};

// A decode worker dying *mid-generation* (inject_crash_at_token): unlike a
// WorkerCrash at request start, tokens were already decoded and checkpoints
// may have left the worker — the engine resumes from base + latest delta on
// a replica instead of recomputing from the blob.
struct MidDecodeCrash : public WorkerCrash {
  MidDecodeCrash(const std::string& what, std::size_t tokens_decoded)
      : WorkerCrash(what), tokens_decoded(tokens_decoded) {}
  std::size_t tokens_decoded = 0;
};

// One request's measured + modeled lifecycle through the disaggregated path.
struct DisaggRecord {
  ServingRequest request;
  bool rejected = false;           // dropped: prefill retries exhausted, or
                                   // failure with fallback_local disabled
  std::vector<int> generated;      // first (prefill-side) token included

  std::size_t wire_bytes = 0;      // serialized blob size, measured
  KvWireSections sections;         // per-section byte accounting
  std::size_t fp16_kv_bytes = 0;   // FP16 K+V footprint of the same tokens
  std::size_t prefill_chunks = 0;
  std::size_t decode_kv_blocks = 0;

  double prefill_s = 0.0;          // measured compute
  double serialize_s = 0.0;        // measured
  double transfer_s = 0.0;         // netsim-modeled wire time, retries incl.
  double deserialize_s = 0.0;      // measured
  double decode_s = 0.0;           // measured compute

  double ttft_s = 0.0;  // arrival → first token deliverable at decode worker
  double jct_s = 0.0;   // arrival → last token

  // Fault + recovery accounting for this request.
  std::size_t retries = 0;             // recovery rounds consumed
  std::size_t chunks_dropped = 0;      // injected drops seen on the wire
  std::size_t chunks_corrupted = 0;    // injected corruptions seen
  std::size_t crc_failures = 0;        // blob rejections (KvWireError)
  std::size_t prefill_crashes = 0;
  std::size_t decode_crashes = 0;
  std::size_t retransmitted_bytes = 0; // wire bytes past the first copy
  double backoff_s = 0.0;              // modeled backoff waits, summed
  bool deadline_missed = false;
  bool fallback_local = false;         // decoded on the prefill worker

  // Checkpoint / resume accounting (zero unless checkpoint_every_tokens > 0).
  std::size_t checkpoints = 0;         // deltas cut by the decode worker
  std::size_t checkpoint_bytes = 0;    // summed delta blob sizes
  std::size_t checkpoint_failures = 0; // deltas that never reached the store
  std::size_t resumes = 0;             // decodes restarted from base + delta
  std::size_t tokens_replayed = 0;     // suffix tokens replayed on resume
  std::size_t tokens_recomputed = 0;   // decoded tokens lost past the last
                                       // stored checkpoint (the lost window)

  // Compression ratio the wire actually achieved for this request.
  double wire_vs_fp16() const {
    return fp16_kv_bytes == 0
               ? 0.0
               : static_cast<double>(wire_bytes) /
                     static_cast<double>(fp16_kv_bytes);
  }
};

struct DisaggReport {
  std::vector<DisaggRecord> requests;  // arrival order
  std::size_t total_generated = 0;
  std::size_t wire_bytes_total = 0;
  std::size_t fp16_kv_bytes_total = 0;
  double wire_vs_fp16 = 0.0;
  double makespan_s = 0.0;
  double transfer_s_total = 0.0;
  SampleStats ttft_s;
  SampleStats jct_s;

  // Fault/recovery rollups (sums of the per-request counters).
  std::size_t retries_total = 0;
  std::size_t chunks_dropped_total = 0;
  std::size_t chunks_corrupted_total = 0;
  std::size_t crc_failures_total = 0;
  std::size_t prefill_crashes_total = 0;
  std::size_t decode_crashes_total = 0;
  std::size_t retransmitted_bytes_total = 0;
  std::size_t fallbacks = 0;
  std::size_t deadline_misses = 0;
  std::size_t checkpoints_total = 0;
  std::size_t checkpoint_bytes_total = 0;
  std::size_t checkpoint_failures_total = 0;
  std::size_t resumes_total = 0;
  std::size_t tokens_replayed_total = 0;
  std::size_t tokens_recomputed_total = 0;

  // Decode-side admission pressure, read off the worker's pool after the
  // episode (and a PagedKvCache when one is observed): how close the pool
  // came to exhaustion alongside the fault counters above.
  std::size_t decode_failed_allocations = 0;
  std::size_t decode_min_free_watermark = 0;
  std::size_t decode_oom_appends = 0;
};

// The prefill half: prompt in, first token + wire blob out.
class PrefillWorker {
 public:
  struct Result {
    std::vector<std::uint8_t> blob;
    KvWireSections sections;
    int first_token = -1;
    std::size_t prefill_chunks = 0;
    double prefill_s = 0.0;    // measured model compute
    double serialize_s = 0.0;  // measured serialization
  };

  // The graceful-degradation path: rehydrate + decode locally.
  struct LocalDecode {
    std::vector<int> generated;
    double deserialize_s = 0.0;
    double decode_s = 0.0;
  };

  // `name` addresses this worker in a fleet — it tags WorkerCrash messages
  // and the per-worker report rows (serving/fleet.h).
  PrefillWorker(std::shared_ptr<const TinyModelWeights> weights,
                const DisaggConfig& config, std::string name = "prefill");

  const std::string& name() const { return name_; }

  // Throws WorkerCrash if a crash is scripted for `request_index` with
  // attempts remaining; the engine retries (re-prefill) under its policy.
  Result prefill(const ServingRequest& request, std::size_t request_index = 0);

  // Fallback decode on this worker from the locally retained blob —
  // bit-identical to what the decode worker would have produced.
  LocalDecode local_decode(std::span<const std::uint8_t> blob,
                           int first_token, const ServingRequest& request);

  // Scripts `times` crashes for the request at arrival-order index
  // `request_index`; each prefill() attempt consumes one.
  void inject_crash(std::size_t request_index, std::size_t times = 1);

  Nic& nic() { return nic_; }

 private:
  std::shared_ptr<const TinyModelWeights> weights_;
  DisaggConfig config_;
  std::string name_;
  Nic nic_;
  std::map<std::size_t, std::size_t> crashes_;  // request index → remaining
};

// The decode half: wire blob in, remaining tokens out — bit-identical to the
// single-node continuation.
class DecodeWorker {
 public:
  struct Result {
    bool admitted = false;
    std::vector<int> generated;  // first token included when admitted
    std::size_t kv_blocks = 0;
    double deserialize_s = 0.0;  // measured rehydration (base + delta apply)
    double decode_s = 0.0;       // measured model compute, checkpoint
                                 // capture time excluded
    bool drained = false;        // the sink stopped the decode at a cut
    std::size_t replayed_tokens = 0;  // suffix tokens replayed (resume only)
  };

  DecodeWorker(std::shared_ptr<const TinyModelWeights> weights,
               const DisaggConfig& config, std::string name = "decode");

  const std::string& name() const { return name_; }

  // Admission preflight for load-aware dispatch: worst-case block need of a
  // request (prompt tokens already in the blob + every token it may append),
  // and the pool's current headroom (SIZE_MAX when admission control is off).
  // decode() still re-checks — the preflight is advisory, the reservation is
  // the word.
  std::size_t blocks_needed(std::size_t blob_tokens,
                            std::size_t max_new_tokens) const;
  std::size_t free_kv_blocks() const;

  // Throws WorkerCrash on a scripted crash (the buffered blob is lost with
  // the worker — recovery needs a full retransmit), MidDecodeCrash on a
  // scripted mid-generation crash (inject_crash_at_token), and KvWireError
  // when the blob fails its integrity checks. When `sink` is set and
  // checkpoint_every_tokens > 0, a v3 delta is cut every K decoded tokens
  // (after the token's KV row is committed and the next input token is
  // known) and handed to the sink; a false return drains the decode at that
  // consistent cut.
  Result decode(std::span<const std::uint8_t> blob, int first_token,
                const ServingRequest& request, std::size_t request_index = 0,
                const CheckpointSink& sink = {});

  // Crash-resume: rehydrate the base blob, apply the latest delta
  // checkpoint (replaying its decoded-token suffix), and continue the decode
  // loop mid-stride — bit-identical to the uninterrupted run, with at most
  // checkpoint-window tokens recomputed. Admission re-reserves the same
  // worst-case blocks decode() would.
  Result resume(std::span<const std::uint8_t> base_blob,
                std::span<const std::uint8_t> delta_blob,
                const ServingRequest& request, std::size_t request_index = 0,
                const CheckpointSink& sink = {});

  void inject_crash(std::size_t request_index, std::size_t times = 1);

  // Scripts a crash that fires after exactly `token_index` tokens of
  // `request_index` have been decoded (and any due checkpoint at that count
  // has been cut). Consumed once.
  void inject_crash_at_token(std::size_t request_index,
                             std::size_t token_index);

  // Registers a paged cache whose oom_appends should surface in the report's
  // admission-pressure counters (not owned; may be null).
  void observe_paged_cache(const PagedKvCache* cache) { observed_ = cache; }
  const PagedKvCache* observed_paged_cache() const { return observed_; }

  Nic& nic() { return nic_; }
  const BlockAllocator* allocator() const { return allocator_.get(); }

 private:
  std::shared_ptr<const TinyModelWeights> weights_;
  DisaggConfig config_;
  std::string name_;
  Nic nic_;
  std::unique_ptr<BlockAllocator> allocator_;  // null: no admission control
  std::map<std::size_t, std::size_t> crashes_;
  std::map<std::size_t, std::size_t> mid_crashes_;  // index → token count
  const PagedKvCache* observed_ = nullptr;
};

// Orchestrates the two workers over a request timeline with transfer overlap
// and fault recovery.
class DisaggEngine {
 public:
  DisaggEngine(std::shared_ptr<const TinyModelWeights> weights,
               DisaggConfig config = {});

  PrefillWorker& prefill_worker() { return prefill_; }
  DecodeWorker& decode_worker() { return decode_; }

  // The transfer-path fault injector (seeded from config.transfer_faults).
  // Tests script exact chunk fates here and assert the report's counters
  // against fault_model().stats().
  FaultModel& fault_model() { return faults_; }

  // Serves every request FCFS on its arrival timeline and returns the
  // episode's records + rollups. Compute times are measured on this machine;
  // transfer times come from the netsim NIC model. Crash-plan request
  // indices refer to positions in this run's arrival order.
  DisaggReport run(std::vector<ServingRequest> requests);

  // Single-request convenience. Worker busy horizons persist across calls,
  // so back-to-back serves share one timeline like run() would.
  DisaggRecord serve(const ServingRequest& request);

 private:
  std::shared_ptr<const TinyModelWeights> weights_;
  DisaggConfig config_;
  PrefillWorker prefill_;
  DecodeWorker decode_;
  FaultModel faults_;
  double prefill_free_s_ = 0.0;
  double decode_free_s_ = 0.0;
};

// One backoff wait: base · mult^round · (1 + jitter · u) with u drawn from
// the request's jitter stream (retry_jitter_rng). Shared by both engines.
double retry_backoff_s(const RetryPolicy& policy, std::size_t round,
                       Rng& jitter);

}  // namespace hack
