// Serving-request lifecycle and per-request metrics.
//
// The disaggregated serving loop the paper assumes (§2, §7) is request-
// granular: requests arrive on an open-loop process, wait for admission,
// prefill (possibly in bounded chunks so decode steps stay interleaved),
// decode token by token, and finish. This header defines that lifecycle —
//
//   kQueued ──admit──▶ kPrefill ──prompt done──▶ kDecoding ──eos/max──▶ kFinished
//      │                   ▲  │                   ▲  │
//      │                   │  ▼                   │  ▼
//      │                  kSwapped ◀──────────────┘  (tiered mode only:
//      │                   evicted to the compressed far tier, resumes
//      │                   into the phase it left — docs/serving.md)
//      └──────────────── never fits the KV pool ────────────────▶ kRejected
//
// — plus the timestamps the serving metrics are computed from: TTFT (arrival
// to first generated token), TBT (gaps between consecutive tokens), and JCT
// (arrival to finish). The continuous-batching engine (serving/engine.h)
// owns a ServingRecord per submitted request and stamps it as the request
// moves through the states.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/arrivals.h"

namespace hack {

enum class RequestState {
  kQueued,    // submitted, waiting for admission into the running batch
  kPrefill,   // admitted; prompt ingested in bounded chunks
  kDecoding,  // prompt done; generating one token per engine step
  kSwapped,   // tiered mode: KV evicted to the compressed far tier (kv_wire
              // blob); resumes bit-identically into kPrefill/kDecoding
  kFinished,  // hit eos or max_new_tokens
  kRejected,  // can never fit the KV block pool; terminal, zero tokens
};

const char* request_state_name(RequestState state);

// What a client submits.
struct ServingRequest {
  std::uint64_t id = 0;
  std::vector<int> prompt;
  std::size_t max_new_tokens = 0;
  int eos = -1;               // stop token (< 0: none)
  double arrival_time_s = 0.0;  // engine-clock instant the request appears
};

// Engine-side progress + measured lifecycle of one request. Timestamps are
// engine-clock seconds (run() start = 0); -1 marks "not yet".
struct ServingRecord {
  ServingRequest request;
  RequestState state = RequestState::kQueued;

  std::size_t prefill_done = 0;      // prompt rows already through the stack
  std::vector<int> generated;        // tokens emitted so far (prompt excluded)

  double admit_time_s = -1.0;        // entered the running batch
  double first_token_time_s = -1.0;
  double finish_time_s = -1.0;
  std::vector<double> token_times_s;  // one stamp per generated token

  std::size_t kv_blocks = 0;         // peak blocks held by this request

  // Tiered-memory lifecycle counters (zero outside tiered mode). The counts
  // are schedule-determined — bitwise equal across replays of the same
  // submissions — while swap_stall_s is wall-clock measurement only.
  std::size_t evictions = 0;     // times this request was swapped out
  std::size_t rehydrations = 0;  // times it was swapped back in
  std::size_t prefetch_hits = 0; // rehydrations served by a staged prefetch
  double swap_stall_s = 0.0;     // time its resumes blocked on deserialize

  bool done() const {
    return state == RequestState::kFinished ||
           state == RequestState::kRejected;
  }
  double ttft_s() const { return first_token_time_s - request.arrival_time_s; }
  double jct_s() const { return finish_time_s - request.arrival_time_s; }
  // Gaps between consecutive generated tokens (empty below two tokens).
  std::vector<double> tbt_s() const;
};

// Turns an arrival process (workload/arrivals.h: open-loop Poisson, or a
// replayed trace) into engine-ready requests: prompt tokens drawn from the
// synthetic corpus, lengths from the arrival's sampled shape. `max_output`
// caps output lengths (0 = no cap) so bench runs stay bounded; prompts are
// clamped to [1, max_input] the same way when max_input > 0.
std::vector<ServingRequest> requests_from_arrivals(
    const std::vector<ArrivalRecord>& arrivals, std::size_t vocab,
    std::uint64_t prompt_seed, std::size_t max_input = 0,
    std::size_t max_output = 0);

}  // namespace hack
