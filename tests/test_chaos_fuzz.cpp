// Seeded randomized chaos fuzz over the fleet engine and the tiered
// serving engine.
//
// Fleet corpus: fifty derived (fault config × kill schedule × fleet shape)
// combinations, each run twice, pinning the robustness contract corpus-wide
// instead of on hand-picked schedules:
//
//   Replay       same seed + same kill schedule ⇒ bitwise-identical token
//                streams, routes, retry counts, backoff draws, and
//                checkpoint/resume/migration counters across the two runs.
//   Bit-identity every request that completes (wire path or local fallback)
//                produces the token stream of the fault-free single-pair
//                engine, regardless of which replicas it bounced across.
//   Ledger       the report's drop/corruption counters equal the summed
//                per-link FaultModel injection ledgers exactly — no fault is
//                double-counted or silently absorbed, checkpoint traffic
//                included.
//
// Determinism scaffolding: the fate streams are ordinal-keyed (a chunk's
// fate depends on how many chunks the link has seen, not on wall-clock
// timing), so probabilistic drops and corruption replay exactly. Link-down
// windows are time-keyed — measured compute shifts whether a transfer lands
// inside one — so the fuzzer leaves them off; the scheduled-window chaos leg
// lives in tests/test_fleet.cpp where the schedule is pinned. Down cooldowns
// are infinite for the same reason (recovery time would depend on measured
// compute).
//
// Tiered corpus: derived (pool size × preemption on/off × prefetch on/off ×
// quantization format × workload shape) combinations over the tiered
// serving engine (docs/serving.md, "Tiered KV memory"), each run twice,
// extending the same three properties to eviction under memory pressure:
// bitwise replay of tokens and the evict/resume/prefetch event log, ledger
// exactness (every eviction rehydrated, bytes out == bytes in, hit + miss
// == rehydrations, the pool fully drained), and bit-identity against the
// never-evicted engine.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "kvcache/block_allocator.h"
#include "model/tiny_transformer.h"
#include "serving/disagg.h"
#include "serving/engine.h"
#include "serving/fleet.h"
#include "workload/corpus.h"

namespace hack {
namespace {

std::shared_ptr<const TinyModelWeights> small_weights() {
  TinyConfig tc;
  tc.vocab = 64;
  tc.layers = 2;
  tc.heads = 4;
  tc.kv_heads = 2;
  tc.d_head = 32;
  tc.d_ff = 128;
  return make_tiny_weights(tc);
}

struct FuzzCase {
  FleetConfig fc;
  std::vector<ServingRequest> requests;
  // Kill schedule: start-of-decode crashes, a mid-decode crash (armed on
  // every decode replica so it fires wherever the request lands), and
  // prefill crashes.
  std::size_t decode_kill_request = SIZE_MAX;
  std::size_t decode_kill_worker = 0;
  std::size_t mid_kill_request = SIZE_MAX;
  std::size_t mid_kill_token = 0;
  std::size_t prefill_kill_request = SIZE_MAX;
  std::size_t prefill_kill_worker = 0;
};

FuzzCase derive_case(std::uint64_t case_id) {
  Rng rng(0xF0220000u + case_id * 0x9E3779B97F4A7C15ULL);
  FuzzCase c;

  DisaggConfig dc;
  dc.attn.pi = 32;
  const int kv_bits_options[] = {2, 4, 8};
  dc.attn.kv_bits = kv_bits_options[rng.next_below(3)];
  dc.attn.summation_elimination = rng.next_below(2) == 0;
  dc.attn.requant_elimination = rng.next_below(2) == 0;
  const std::size_t chunk_options[] = {2048, 4096, 16384};
  dc.transfer_chunk_bytes = chunk_options[rng.next_below(3)];
  dc.checkpoint_every_tokens = 2 + rng.next_below(3);  // 2..4
  const double drop_options[] = {0.0, 0.05, 0.15};
  const double corrupt_options[] = {0.0, 0.01, 0.05};
  dc.transfer_faults.chunk_drop_prob = drop_options[rng.next_below(3)];
  dc.transfer_faults.chunk_corrupt_prob = corrupt_options[rng.next_below(3)];
  dc.transfer_faults.seed = 0xC0DE + case_id;
  dc.retry.max_retries = 16;

  c.fc.worker = dc;
  c.fc.prefill_workers = 1 + rng.next_below(2);  // 1..2
  c.fc.decode_workers = 1 + rng.next_below(3);   // 1..3
  c.fc.prefill_policy = &dispatch_round_robin;
  c.fc.decode_policy = &dispatch_round_robin;
  c.fc.health.down_cooldown_s = 1e9;  // time-free routing: down stays down

  const std::size_t n_requests = 3 + rng.next_below(2);  // 3..4
  SyntheticCorpus corpus({.vocab = 64}, 0x5EED + case_id);
  for (std::size_t i = 0; i < n_requests; ++i) {
    ServingRequest r;
    r.prompt = corpus.prompt(i, 30 + rng.next_below(21));  // 30..50 tokens
    r.max_new_tokens = 5 + rng.next_below(4);              // 5..8
    r.arrival_time_s = 0.01 * static_cast<double>(i);
    c.requests.push_back(std::move(r));
  }

  if (rng.next_below(2) == 0) {
    c.decode_kill_request = rng.next_below(n_requests);
    c.decode_kill_worker = rng.next_below(c.fc.decode_workers);
  }
  if (rng.next_below(2) == 0) {
    c.mid_kill_request = rng.next_below(n_requests);
    c.mid_kill_token = 2 + rng.next_below(4);  // 2..5
  }
  if (rng.next_below(3) == 0) {
    c.prefill_kill_request = rng.next_below(n_requests);
    c.prefill_kill_worker = rng.next_below(c.fc.prefill_workers);
  }
  return c;
}

struct Episode {
  FleetReport report;
  FaultStats ledger;
};

Episode run_case(const std::shared_ptr<const TinyModelWeights>& weights,
                 const FuzzCase& c) {
  FleetEngine engine(weights, c.fc);
  if (c.decode_kill_request != SIZE_MAX) {
    engine.decode_worker(c.decode_kill_worker)
        .inject_crash(c.decode_kill_request);
  }
  if (c.mid_kill_request != SIZE_MAX) {
    for (std::size_t j = 0; j < c.fc.decode_workers; ++j) {
      engine.decode_worker(j).inject_crash_at_token(c.mid_kill_request,
                                                    c.mid_kill_token);
    }
  }
  if (c.prefill_kill_request != SIZE_MAX) {
    engine.prefill_worker(c.prefill_kill_worker)
        .inject_crash(c.prefill_kill_request);
  }
  Episode e;
  e.report = engine.run(c.requests);
  e.ledger = engine.fault_ledger();
  return e;
}

TEST(ChaosFuzz, FiftySeededEpisodesReplayExactlyAndStayBitIdentical) {
  const auto weights = small_weights();
  // Corpus-wide non-vacuousness: the derived schedules must actually
  // exercise every fault class and the checkpoint/resume machinery.
  std::size_t total_drops = 0;
  std::size_t total_corruptions = 0;
  std::size_t total_crashes = 0;
  std::size_t total_resumes = 0;
  std::size_t total_checkpoints = 0;
  std::size_t total_completed = 0;

  for (std::uint64_t case_id = 0; case_id < 50; ++case_id) {
    SCOPED_TRACE(testing::Message() << "fuzz case " << case_id);
    const FuzzCase c = derive_case(case_id);

    // The contract's reference: the fault-free single-pair engine with the
    // same worker config (checkpoint cadence off — cadence must not change
    // tokens either).
    DisaggConfig clean = c.fc.worker;
    clean.transfer_faults = {};
    clean.checkpoint_every_tokens = 0;
    DisaggEngine reference(weights, clean);
    const DisaggReport ref = reference.run(c.requests);

    const Episode a = run_case(weights, c);
    const Episode b = run_case(weights, c);

    // ---- Replay: the two runs are bitwise-identical. ----
    ASSERT_EQ(a.report.requests.size(), b.report.requests.size());
    for (std::size_t i = 0; i < a.report.requests.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "request " << i);
      const FleetRecord& ra = a.report.requests[i];
      const FleetRecord& rb = b.report.requests[i];
      EXPECT_EQ(ra.prefill_route, rb.prefill_route);
      EXPECT_EQ(ra.decode_route, rb.decode_route);
      EXPECT_EQ(ra.d.generated, rb.d.generated);
      EXPECT_EQ(ra.d.retries, rb.d.retries);
      EXPECT_EQ(ra.d.backoff_s, rb.d.backoff_s);  // bitwise jitter replay
      EXPECT_EQ(ra.d.checkpoints, rb.d.checkpoints);
      EXPECT_EQ(ra.d.checkpoint_bytes, rb.d.checkpoint_bytes);
      EXPECT_EQ(ra.d.resumes, rb.d.resumes);
      EXPECT_EQ(ra.d.tokens_replayed, rb.d.tokens_replayed);
      EXPECT_EQ(ra.d.tokens_recomputed, rb.d.tokens_recomputed);
      EXPECT_EQ(ra.migrations, rb.migrations);
      EXPECT_EQ(ra.drains, rb.drains);
      EXPECT_EQ(ra.shed, rb.shed);
      EXPECT_EQ(ra.d.rejected, rb.d.rejected);
      EXPECT_EQ(ra.d.fallback_local, rb.d.fallback_local);
    }
    EXPECT_EQ(a.report.reroutes_total, b.report.reroutes_total);
    EXPECT_EQ(a.report.re_prefills_total, b.report.re_prefills_total);
    EXPECT_EQ(a.report.chunks_dropped_total, b.report.chunks_dropped_total);
    EXPECT_EQ(a.report.chunks_corrupted_total,
              b.report.chunks_corrupted_total);
    EXPECT_EQ(a.report.crc_failures_total, b.report.crc_failures_total);
    EXPECT_EQ(a.report.checkpoints_total, b.report.checkpoints_total);
    EXPECT_EQ(a.report.checkpoint_failures_total,
              b.report.checkpoint_failures_total);
    EXPECT_EQ(a.report.resumes_total, b.report.resumes_total);
    EXPECT_EQ(a.report.migrations_total, b.report.migrations_total);
    EXPECT_EQ(a.report.drain_events_total, b.report.drain_events_total);
    EXPECT_EQ(a.report.health_transitions_total,
              b.report.health_transitions_total);

    // ---- Ledger: report counters equal the injected ground truth. ----
    EXPECT_EQ(a.report.chunks_dropped_total, a.ledger.drops);
    EXPECT_EQ(a.report.chunks_corrupted_total, a.ledger.corruptions);
    EXPECT_EQ(a.ledger.down_delays, 0u);  // no windows in the fuzz corpus

    // ---- Bit-identity: every completed request matches the reference. ----
    for (std::size_t i = 0; i < a.report.requests.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "request " << i);
      const FleetRecord& rec = a.report.requests[i];
      if (rec.d.rejected) continue;  // budget genuinely exhausted
      EXPECT_EQ(rec.d.generated, ref.requests[i].generated);
      ++total_completed;
    }
    // The decode-crash headline holds corpus-wide.
    EXPECT_EQ(a.report.re_prefills_from_decode_crashes, 0u);

    total_drops += a.ledger.drops;
    total_corruptions += a.ledger.corruptions;
    total_crashes +=
        a.report.decode_crashes_total + a.report.prefill_crashes_total;
    total_resumes += a.report.resumes_total;
    total_checkpoints += a.report.checkpoints_total;
  }

  EXPECT_GT(total_drops, 0u);
  EXPECT_GT(total_corruptions, 0u);
  EXPECT_GT(total_crashes, 0u);
  EXPECT_GT(total_resumes, 0u);
  EXPECT_GT(total_checkpoints, 0u);
  EXPECT_GT(total_completed, 0u);
}

// ------------------------------------------------- tiered-memory corpus

struct TieredFuzzCase {
  ServingEngineConfig ec;
  std::size_t pool_blocks = 0;
  std::vector<ServingRequest> requests;
};

TieredFuzzCase derive_tiered_case(std::uint64_t case_id) {
  Rng rng(0x71E2D000u + case_id * 0x9E3779B97F4A7C15ULL);
  TieredFuzzCase c;

  c.ec.scheduler.tiered = true;
  c.ec.scheduler.block_tokens = 8;
  c.ec.scheduler.max_active = 8;
  const std::size_t chunk_options[] = {8, 16, 256};
  c.ec.scheduler.prefill_chunk_tokens = chunk_options[rng.next_below(3)];
  c.ec.scheduler.preemption = rng.next_below(4) != 0;  // mostly on
  c.ec.scheduler.prefetch = rng.next_below(2) == 0;
  c.ec.scheduler.preempt_stall_limit = 1 + rng.next_below(6);  // 1..6

  // All requests arrive at t=0: admission order — and therefore the whole
  // evict/resume schedule — is then step-deterministic, never wall-clock.
  const std::size_t n_requests = 4 + rng.next_below(3);  // 4..6
  SyntheticCorpus corpus({.vocab = 64}, 0xF00D + case_id);
  std::size_t max_worst_blocks = 0;
  for (std::size_t i = 0; i < n_requests; ++i) {
    ServingRequest r;
    r.id = i;
    r.prompt = corpus.prompt(i, 12 + rng.next_below(21));  // 12..32 tokens
    r.max_new_tokens = 4 + rng.next_below(5);              // 4..8
    const std::size_t worst =
        (r.prompt.size() + r.max_new_tokens + 7) / 8;
    max_worst_blocks = std::max(max_worst_blocks, worst);
    c.requests.push_back(std::move(r));
  }
  // Pool dimension: from "one sequence's worst case" (maximum thrash) to
  // roomy (occasional eviction). Every request fits alone, so none reject.
  c.pool_blocks = max_worst_blocks + rng.next_below(6);  // worst .. worst+5
  return c;
}

TEST(ChaosFuzz, TieredEpisodesReplayExactlyAndDrainTheLedger) {
  const auto weights = small_weights();
  std::size_t total_evictions = 0;
  std::size_t total_hits = 0;
  std::size_t total_misses = 0;
  std::size_t preemption_off_cases = 0;

  for (std::uint64_t case_id = 0; case_id < 16; ++case_id) {
    SCOPED_TRACE(testing::Message() << "tiered fuzz case " << case_id);
    const TieredFuzzCase c = derive_tiered_case(case_id);
    Rng format_rng(0xBEEF + case_id);
    HackAttentionConfig attn;
    attn.pi = 32;
    const int kv_bits_options[] = {2, 4, 8};
    attn.kv_bits = kv_bits_options[format_rng.next_below(3)];
    attn.summation_elimination = format_rng.next_below(2) == 0;
    attn.requant_elimination = format_rng.next_below(2) == 0;
    const auto maker = [&] {
      return make_hack_layer_backend(attn, 7);
    };

    const auto run_tiered = [&](ServingReport* report) {
      BlockAllocator pool(c.pool_blocks, 256);
      ServingEngine engine(weights, maker, c.ec, &pool);
      for (const ServingRequest& r : c.requests) engine.submit(r);
      *report = engine.run();
      EXPECT_EQ(pool.blocks_free(), c.pool_blocks);  // fully drained
    };
    ServingReport a, b;
    run_tiered(&a);
    run_tiered(&b);

    // Never-evicted reference: same chunk schedule, no pool constraint.
    ServingEngineConfig ref_cfg = c.ec;
    ref_cfg.scheduler.tiered = false;
    ServingEngine reference(weights, maker, ref_cfg, nullptr);
    for (const ServingRequest& r : c.requests) reference.submit(r);
    const ServingReport ref = reference.run();

    // ---- Replay: bitwise-identical tokens, schedule, and counters. ----
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "request " << i);
      EXPECT_EQ(a.requests[i].generated, b.requests[i].generated);
      EXPECT_EQ(a.requests[i].evictions, b.requests[i].evictions);
      EXPECT_EQ(a.requests[i].rehydrations, b.requests[i].rehydrations);
      EXPECT_EQ(a.requests[i].prefetch_hits, b.requests[i].prefetch_hits);
    }
    EXPECT_EQ(a.engine.swap_events, b.engine.swap_events);
    EXPECT_EQ(a.engine.tier.evictions, b.engine.tier.evictions);
    EXPECT_EQ(a.engine.tier.bytes_swapped_out,
              b.engine.tier.bytes_swapped_out);
    EXPECT_EQ(a.engine.tier.far_bytes_peak, b.engine.tier.far_bytes_peak);

    // ---- Ledger exactness: the tier drains with nothing left over. ----
    EXPECT_EQ(a.engine.tier.evictions, a.engine.tier.rehydrations);
    EXPECT_EQ(a.engine.tier.bytes_swapped_out,
              a.engine.tier.bytes_swapped_in);
    EXPECT_EQ(a.engine.tier.prefetch_hits + a.engine.tier.prefetch_misses,
              a.engine.tier.rehydrations);
    EXPECT_EQ(a.engine.kv_bytes_admitted, a.engine.kv_bytes_released);
    std::size_t per_request_evictions = 0;
    for (const ServingRecord& rec : a.requests) {
      per_request_evictions += rec.evictions;
    }
    EXPECT_EQ(per_request_evictions, a.engine.tier.evictions);
    if (!c.ec.scheduler.prefetch) {
      EXPECT_EQ(a.engine.tier.prefetch_hits, 0u);
    }

    // ---- Bit-identity: eviction under pressure changed no tokens. ----
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "request " << i);
      EXPECT_EQ(a.requests[i].state, RequestState::kFinished);
      EXPECT_EQ(a.requests[i].generated, ref.requests[i].generated);
    }

    total_evictions += a.engine.tier.evictions;
    total_hits += a.engine.tier.prefetch_hits;
    total_misses += a.engine.tier.prefetch_misses;
    if (!c.ec.scheduler.preemption) ++preemption_off_cases;
  }

  // Corpus-wide non-vacuousness: pressure actually evicted, prefetch both
  // hit and missed, and the preemption-off dimension was drawn.
  EXPECT_GT(total_evictions, 0u);
  EXPECT_GT(total_hits, 0u);
  EXPECT_GT(total_misses, 0u);
  EXPECT_GT(preemption_off_cases, 0u);
}

}  // namespace
}  // namespace hack
