#include "core/hq_matmul.h"

#include <algorithm>
#include <memory>

#include "base/thread_pool.h"
#include "core/int_gemm.h"
#include "quant/packed.h"

namespace hack {
namespace {

// Byte-per-code view of row r, unpacking into `scratch` when the matrix
// stores packed rows. Only the cold Σ b' recompute paths use this; the hot
// kernels consume packed rows directly.
const std::uint8_t* row_codes(const QuantizedMatrix& q, std::size_t r,
                              std::vector<std::uint8_t>& scratch) {
  if (!q.packed_storage()) return q.codes.data() + r * q.cols;
  const std::size_t stride = q.code_row_stride();
  scratch.resize(q.cols);
  unpack_codes(
      std::span<const std::uint8_t>(q.codes).subspan(r * stride, stride),
      q.storage_bits, q.cols, scratch.data());
  return scratch.data();
}

// Shared Eq. (4) engine. Layout differences between NN (P·V) and NT (Q·Kᵀ)
// are confined to the banded integer kernel and the Σ b' recompute loop,
// selected at compile time. The engine is split into a B-side preparation —
// reusable across every task that multiplies against the same B, e.g. GQA
// query heads sharing one KV head, and across every KV tile of a streaming
// pass — and a band processor that the single, batched, and tiled entry
// points dispatch over.

template <bool kNT>
void validate_operands(const QuantizedMatrix& a, const QuantizedMatrix& b) {
  HACK_CHECK(a.axis == QuantAxis::kRow, "A must be row-axis quantized");
  HACK_CHECK(a.bits >= 1 && b.bits >= 1, "operands must be quantized");
  HACK_CHECK(a.storage_bits == 8,
             "A (the transient Q/P operand) must use byte code storage");
  HACK_CHECK(b.storage_bits == 8 || b.storage_bits == b.bits,
             "B storage width " << b.storage_bits << " inconsistent with "
                                << b.bits << "-bit codes");
  HACK_CHECK(a.pi == b.pi, "partition size mismatch: " << a.pi << " vs "
                            << b.pi);
  if constexpr (kNT) {
    HACK_CHECK(b.axis == QuantAxis::kRow,
               "B must be row-axis quantized (token-per-row K layout)");
    HACK_CHECK(a.cols == b.cols, "hq_matmul_nt inner dim mismatch: " << a.cols
                                 << " vs " << b.cols);
  } else {
    HACK_CHECK(b.axis == QuantAxis::kCol, "B must be col-axis quantized");
    HACK_CHECK(a.cols == b.rows, "hq_matmul shape mismatch: " << a.rows << "x"
                                 << a.cols << " * " << b.rows << "x"
                                 << b.cols);
  }
}

// Hoisted per-(j, g) Eq. (4) factors and Σ b' for one B operand:
//   B1 = s_b, B2 = m_b, B3 = s_b·Σb' + |g|·m_b,
// group-major so the inner j-loop of the correction reads them contiguously.
template <bool kNT>
struct PreparedB {
  const QuantizedMatrix* b;
  const SumCache* b_sums;  // identity of the prep, for sharing across tasks
  std::size_t n;
  std::size_t z;
  PartitionScheme scheme;
  std::vector<float> b1, b2, b3;
  std::int64_t sum_flops = 0;  // NZ adds paid here when no SumCache was given

  PreparedB(const QuantizedMatrix& bm, const SumCache* sums)
      : b(&bm),
        b_sums(sums),
        n(kNT ? bm.rows : bm.cols),
        z(kNT ? bm.cols : bm.rows),
        scheme(z, bm.pi, /*allow_ragged_tail=*/true) {
    const std::size_t groups = scheme.group_count();
    HACK_CHECK(bm.group_count() == groups,
               "B group count mismatch: " << bm.group_count() << " vs "
                                          << groups);
    if (sums != nullptr) {
      HACK_CHECK(sums->outer() == n && sums->groups() == groups,
                 "SumCache does not match B");
    }

    // Σ b' per (j, g): read straight out of the SumCache's contiguous storage
    // (it uses the same outer-major layout) or recompute from the codes.
    std::vector<std::int32_t> b_col_sums_storage;
    const std::int32_t* b_col_sums = nullptr;
    if (sums != nullptr) {
      b_col_sums = sums->data();
    } else {
      b_col_sums_storage.assign(n * groups, 0);
      std::vector<std::uint8_t> scratch;
      if constexpr (kNT) {
        // B is N x Z: each (j, g) sum is a contiguous run of row j.
        for (std::size_t j = 0; j < n; ++j) {
          const std::uint8_t* row = row_codes(bm, j, scratch);
          for (std::size_t g = 0; g < groups; ++g) {
            std::int32_t acc = 0;
            for (std::size_t zz = scheme.group_begin(g);
                 zz < scheme.group_end(g); ++zz) {
              acc += row[zz];
            }
            b_col_sums_storage[j * groups + g] = acc;
          }
        }
      } else {
        // B is Z x N: stream the rows, scattering into per-column slots.
        for (std::size_t g = 0; g < groups; ++g) {
          for (std::size_t zz = scheme.group_begin(g);
               zz < scheme.group_end(g); ++zz) {
            const std::uint8_t* row = row_codes(bm, zz, scratch);
            for (std::size_t j = 0; j < n; ++j) {
              b_col_sums_storage[j * groups + g] += row[j];
            }
          }
        }
      }
      b_col_sums = b_col_sums_storage.data();
      sum_flops = static_cast<std::int64_t>(n) * z;  // NZ adds
    }

    b1.resize(groups * n);
    b2.resize(groups * n);
    b3.resize(groups * n);
    for (std::size_t g = 0; g < groups; ++g) {
      const auto group_len = static_cast<float>(scheme.group_size(g));
      float* f1 = b1.data() + g * n;
      float* f2 = b2.data() + g * n;
      float* f3 = b3.data() + g * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float sb = bm.scales[j * groups + g];
        const float mb = bm.mins[j * groups + g];
        f1[j] = sb;
        f2[j] = mb;
        f3[j] = sb * static_cast<float>(b_col_sums[j * groups + g]) +
                group_len * mb;
      }
    }
  }
};

// One row band of C restricted to output columns [j0, j1): integer GEMM per
// group into a band-local int32 tile, then the vectorizable three-term
// correction
//   C[i,j] += A1·B1[j]·dot + A2·B2[j] + A3·B3[j]
// with A1 = s_a, A2 = s_a·Σa', A3 = m_a. `out` points at the band's first
// output row with leading dimension `ldc`; `a_sums_full`, when given, is the
// whole-matrix hq_a_row_sums(a) hoisted by a streaming caller (null =
// compute the band's Σ a' here). Every C row is produced entirely inside one
// band — and each output column value is independent of [j0, j1) — so
// results depend neither on the band decomposition nor on the tiling.
template <bool kNT>
void process_band(const QuantizedMatrix& a, const PreparedB<kNT>& pb,
                  const std::int32_t* a_sums_full, std::size_t r0,
                  std::size_t r1, std::size_t j0, std::size_t j1, float* out,
                  std::size_t ldc) {
  const std::size_t n_tile = j1 - j0;
  const std::size_t groups = pb.scheme.group_count();
  const CodeView a_codes{a.codes.data(), a.rows, a.cols, a.storage_bits};
  const CodeView b_codes{pb.b->codes.data(), pb.b->rows, pb.b->cols,
                         pb.b->storage_bits};
  if constexpr (!kNT) {
    HACK_CHECK(j0 == 0 && j1 == pb.n, "NN bands cover all output columns");
  }

  const std::size_t band = r1 - r0;
  // Σ a' per (band row, g): hoisted by the caller or computed from the
  // contiguous runs of each A row.
  std::vector<std::int32_t> a_sums_local;
  const std::int32_t* asum = a_sums_full;
  std::size_t asum_r0 = 0;
  if (asum == nullptr) {
    a_sums_local.assign(band * groups, 0);
    for (std::size_t i = r0; i < r1; ++i) {
      const std::uint8_t* row = a.codes.data() + i * a.cols;
      for (std::size_t g = 0; g < groups; ++g) {
        std::int32_t acc = 0;
        for (std::size_t zz = pb.scheme.group_begin(g);
             zz < pb.scheme.group_end(g); ++zz) {
          acc += row[zz];
        }
        a_sums_local[(i - r0) * groups + g] = acc;
      }
    }
    asum = a_sums_local.data();
    asum_r0 = r0;
  }

  std::vector<std::int32_t> dot(band * n_tile);
  for (std::size_t g = 0; g < groups; ++g) {
    std::fill(dot.begin(), dot.end(), 0);
    if constexpr (kNT) {
      int_gemm_nt_rows(a_codes, b_codes, r0, r1, pb.scheme.group_begin(g),
                       pb.scheme.group_end(g), dot.data(), pb.b->bits, j0, j1);
    } else {
      int_gemm_nn_rows(a_codes, b_codes, r0, r1, pb.scheme.group_begin(g),
                       pb.scheme.group_end(g), dot.data(), pb.b->bits);
    }
    const float* f1 = pb.b1.data() + g * pb.n + j0;
    const float* f2 = pb.b2.data() + g * pb.n + j0;
    const float* f3 = pb.b3.data() + g * pb.n + j0;
    for (std::size_t i = r0; i < r1; ++i) {
      const float sa = a.scales[i * groups + g];
      const float a2 =
          sa * static_cast<float>(asum[(i - asum_r0) * groups + g]);
      const float a3 = a.mins[i * groups + g];
      float* crow = out + (i - r0) * ldc;
      const std::int32_t* drow = dot.data() + (i - r0) * n_tile;
      for (std::size_t j = 0; j < n_tile; ++j) {
        crow[j] += sa * f1[j] * static_cast<float>(drow[j]) + a2 * f2[j] +
                   a3 * f3[j];
      }
    }
  }
}

// Cost accounting for one task (pinned by test_cost_model / test_hq_matmul):
//   MZ adds for Σ a', and 9MN for Eq. (4) — 2 for sa·sb·dot, 2+2 for the
//   two affine terms, 2 for Z·ma·mb, 3 adds folding the terms together.
void fill_stats(HqStats* stats, std::size_t m, std::size_t n, std::size_t z,
                std::int64_t sum_flops) {
  if (stats == nullptr) return;
  HqStats local{};
  local.sum_flops = sum_flops;
  local.approx_flops = static_cast<std::int64_t>(m) * z +
                       9 * static_cast<std::int64_t>(m) * n;
  local.int_macs = static_cast<std::int64_t>(m) * n * z;
  *stats = local;
}

template <bool kNT>
Matrix hq_matmul_single(const QuantizedMatrix& a, const QuantizedMatrix& b,
                        const SumCache* b_sums, HqStats* stats, int threads) {
  validate_operands<kNT>(a, b);
  const PreparedB<kNT> pb(b, b_sums);
  const std::size_t m = a.rows;
  HACK_CHECK(a.group_count() == pb.scheme.group_count(),
             "A group count mismatch");

  Matrix c(m, pb.n, 0.0f);
  float* c0 = c.flat().data();
  if (m == 1 || threads == 1) {
    // Decode GEMV fast path / explicit serial: no pool dispatch, the banded
    // kernels degrade to j-tiled dot loops over the single row.
    process_band<kNT>(a, pb, nullptr, 0, m, 0, pb.n, c0, pb.n);
  } else {
    ThreadPool& pool = ThreadPool::global();
    pool.parallel_for(m, chunks_for_request(threads, m, pool.lanes()),
                      [&](std::size_t r0, std::size_t r1) {
                        process_band<kNT>(a, pb, nullptr, r0, r1, 0, pb.n,
                                          c0 + r0 * pb.n, pb.n);
                      });
  }
  fill_stats(stats, m, pb.n, pb.z, pb.sum_flops);
  return c;
}

// Segment-quantized A validation for the NN KV-tile path: A's columns are the
// tile, its partitions the kv_tile_segments of the range, so every A group
// lines up with exactly one absolute B group.
struct NnTilePrep {
  const QuantizedMatrix* b;
  const SumCache* b_sums;
  std::size_t k0, k1;
  std::vector<KvSegment> segments;
  KvTileBSums seg_sums;
};

template <bool kNT>
void hq_matmul_batch(std::span<HqGemmTask> tasks, int threads) {
  if (tasks.empty()) return;

  // Resolve KV ranges and validate per task.
  std::vector<std::size_t> kr0(tasks.size()), kr1(tasks.size());
  std::vector<bool> tiled(tasks.size(), false);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const HqGemmTask& task = tasks[t];
    HACK_CHECK(task.a != nullptr && task.b != nullptr && task.c != nullptr,
               "batched HQ-GEMM task missing an operand");
    // Token rows of B: the N dimension for NT (K stores one token per row)
    // and the contraction dimension for NN (V rows are sequence positions).
    const std::size_t b_tokens = task.b->rows;
    kr0[t] = task.k_begin;
    kr1[t] = task.k_end == kKvRangeFull ? b_tokens : task.k_end;
    HACK_CHECK(kr0[t] <= kr1[t] && kr1[t] <= b_tokens,
               "KV tile [" << kr0[t] << ", " << kr1[t] << ") out of "
                           << b_tokens << " token rows");
    tiled[t] = !(kr0[t] == 0 && kr1[t] == b_tokens);
    if (!tiled[t] || kNT) {
      validate_operands<kNT>(*task.a, *task.b);
    } else {
      // NN tile: A is the [M x tile] block, checked against the segment
      // geometry below instead of against B's full inner extent.
      HACK_CHECK(task.a->axis == QuantAxis::kRow,
                 "A must be row-axis quantized");
      HACK_CHECK(task.b->axis == QuantAxis::kCol,
                 "B must be col-axis quantized");
      HACK_CHECK(task.a->storage_bits == 8,
                 "A (the transient P operand) must use byte code storage");
      HACK_CHECK(task.a->pi == task.b->pi, "partition size mismatch");
      HACK_CHECK(task.a->cols == kr1[t] - kr0[t],
                 "NN tile A width " << task.a->cols << " != tile "
                                    << kr1[t] - kr0[t]);
    }
  }

  // B-side preparation, shared across tasks with the same (b, b_sums) pair —
  // NT tiles reuse the full-B prep since K partitions run along d_head.
  std::vector<std::unique_ptr<PreparedB<kNT>>> preps;
  std::vector<std::unique_ptr<NnTilePrep>> tile_preps;
  std::vector<std::size_t> prep_of(tasks.size(), kKvRangeFull);
  std::vector<std::size_t> tile_prep_of(tasks.size(), kKvRangeFull);
  std::vector<bool> charges_sum_flops(tasks.size(), false);
  std::vector<std::vector<std::int32_t>> a_seg_sums(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const HqGemmTask& task = tasks[t];
    if (!kNT && tiled[t]) {
      std::size_t found = tile_preps.size();
      for (std::size_t p = 0; p < tile_preps.size(); ++p) {
        if (tile_preps[p]->b == task.b && tile_preps[p]->b_sums == task.b_sums &&
            tile_preps[p]->k0 == kr0[t] && tile_preps[p]->k1 == kr1[t]) {
          found = p;
          break;
        }
      }
      if (found == tile_preps.size()) {
        auto prep = std::make_unique<NnTilePrep>(NnTilePrep{
            task.b, task.b_sums, kr0[t], kr1[t],
            kv_tile_segments(kr0[t], kr1[t], task.b->rows, task.b->pi),
            {}});
        prep->seg_sums =
            kv_tile_b_sums(*task.b, task.b_sums, prep->segments);
        tile_preps.push_back(std::move(prep));
        charges_sum_flops[t] = true;  // first user pays the Σ b' reduce
      }
      tile_prep_of[t] = found;
      const std::size_t segs = tile_preps[found]->segments.size();
      HACK_CHECK(task.a->group_count() == segs,
                 "NN tile A must be quantized per kv_tile_segments: "
                     << task.a->group_count() << " groups vs " << segs
                     << " segments");
      // Σ a' per (row, segment) — the tile path's analogue of the band-local
      // row sums, computed once per task.
      a_seg_sums[t].assign(task.a->rows * segs, 0);
      for (std::size_t i = 0; i < task.a->rows; ++i) {
        const std::uint8_t* row = task.a->codes.data() + i * task.a->cols;
        for (std::size_t s = 0; s < segs; ++s) {
          const KvSegment& seg = tile_preps[found]->segments[s];
          std::int32_t acc = 0;
          for (std::size_t z = seg.begin; z < seg.end; ++z) {
            acc += row[z - kr0[t]];
          }
          a_seg_sums[t][i * segs + s] = acc;
        }
      }
      *task.c = Matrix(task.a->rows, task.b->cols, 0.0f);
      continue;
    }
    std::size_t found = preps.size();
    for (std::size_t p = 0; p < preps.size(); ++p) {
      if (preps[p]->b == task.b && preps[p]->b_sums == task.b_sums) {
        found = p;
        break;
      }
    }
    if (found == preps.size()) {
      preps.push_back(std::make_unique<PreparedB<kNT>>(*task.b, task.b_sums));
      charges_sum_flops[t] = true;  // first user pays the Σ b' recompute
    }
    prep_of[t] = found;
    HACK_CHECK(task.a->group_count() == preps[found]->scheme.group_count(),
               "A group count mismatch");
    *task.c = Matrix(task.a->rows, kNT ? kr1[t] - kr0[t] : preps[found]->n,
                     0.0f);
  }

  // Work items: each task's M splits into row bands; single-row tasks (the
  // batched decode GEMV case) contribute exactly one item. The split depends
  // only on the requested thread count — and every C row lives entirely
  // inside one item — so results are independent of the actual pool size.
  ThreadPool& pool = ThreadPool::global();
  const std::size_t lanes =
      threads <= 0 ? pool.lanes() : static_cast<std::size_t>(threads);
  const std::size_t bands_per_task = std::max<std::size_t>(
      1, (2 * lanes + tasks.size() - 1) / tasks.size());

  struct Item {
    std::size_t task, r0, r1;
  };
  std::vector<Item> items;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const std::size_t m = tasks[t].a->rows;
    const std::size_t bands = std::min(m, bands_per_task);
    for (std::size_t band = 0; band < bands; ++band) {
      items.push_back({t, band * m / bands, (band + 1) * m / bands});
    }
  }

  const auto run_item = [&](std::size_t idx) {
    const Item& it = items[idx];
    const HqGemmTask& task = tasks[it.task];
    float* c0 = task.c->flat().data();
    if (!kNT && tiled[it.task]) {
      const NnTilePrep& tp = *tile_preps[tile_prep_of[it.task]];
      const std::size_t segs = tp.segments.size();
      const std::size_t n = task.b->cols;
      hq_nn_tile_accumulate(
          task.a->codes.data() + it.r0 * task.a->cols, it.r1 - it.r0,
          std::span<const float>(task.a->mins).subspan(it.r0 * segs,
                                                       (it.r1 - it.r0) * segs),
          std::span<const float>(task.a->scales)
              .subspan(it.r0 * segs, (it.r1 - it.r0) * segs),
          std::span<const std::int32_t>(a_seg_sums[it.task])
              .subspan(it.r0 * segs, (it.r1 - it.r0) * segs),
          *task.b, tp.segments, tp.seg_sums.sums, tp.k0, tp.k1,
          c0 + it.r0 * n);
      return;
    }
    const PreparedB<kNT>& pb = *preps[prep_of[it.task]];
    const std::size_t j0 = kNT ? kr0[it.task] : 0;
    const std::size_t j1 = kNT ? kr1[it.task] : pb.n;
    const std::size_t ldc = j1 - j0;
    process_band<kNT>(*task.a, pb, nullptr, it.r0, it.r1, j0, j1,
                      c0 + it.r0 * ldc, ldc);
  };
  if (threads == 1 || items.size() == 1) {
    for (std::size_t i = 0; i < items.size(); ++i) run_item(i);
  } else {
    // threads <= 0: one chunk per item, claimed dynamically, so a slow head
    // does not serialize the rest of the layer. threads = N: N contiguous
    // chunks, capping concurrency at the requested width.
    pool.parallel_for(items.size(),
                      chunks_for_request(threads, items.size(),
                                         /*auto_chunks=*/items.size()),
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          run_item(i);
                        }
                      });
  }

  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (!kNT && tiled[t]) {
      const NnTilePrep& tp = *tile_preps[tile_prep_of[t]];
      fill_stats(tasks[t].stats, tasks[t].a->rows, tasks[t].b->cols,
                 kr1[t] - kr0[t],
                 charges_sum_flops[t] ? tp.seg_sums.sum_flops : 0);
      continue;
    }
    const PreparedB<kNT>& pb = *preps[prep_of[t]];
    fill_stats(tasks[t].stats, tasks[t].a->rows, kNT ? kr1[t] - kr0[t] : pb.n,
               pb.z, charges_sum_flops[t] ? pb.sum_flops : 0);
  }
}

}  // namespace

std::vector<KvSegment> kv_tile_segments(std::size_t k_begin, std::size_t k_end,
                                        std::size_t rows, std::size_t pi) {
  HACK_CHECK(pi > 0, "partition size must be positive");
  HACK_CHECK(k_begin <= k_end && k_end <= rows,
             "KV tile [" << k_begin << ", " << k_end << ") out of " << rows);
  std::vector<KvSegment> segs;
  std::size_t pos = k_begin;
  while (pos < k_end) {
    const std::size_t g = pos / pi;
    const std::size_t g_begin = g * pi;
    const std::size_t g_end = std::min(g_begin + pi, rows);
    const std::size_t end = std::min(g_end, k_end);
    segs.push_back({pos, end, g, pos == g_begin && end == g_end});
    pos = end;
  }
  return segs;
}

struct HqNtPrep::Impl {
  PreparedB<true> pb;
  Impl(const QuantizedMatrix& b, const SumCache* sums) : pb(b, sums) {}
};

HqNtPrep::HqNtPrep(const QuantizedMatrix& b, const SumCache* b_sums)
    : impl_(std::make_unique<Impl>(b, b_sums)) {}
HqNtPrep::~HqNtPrep() = default;
HqNtPrep::HqNtPrep(HqNtPrep&&) noexcept = default;
HqNtPrep& HqNtPrep::operator=(HqNtPrep&&) noexcept = default;
std::size_t HqNtPrep::n() const { return impl_->pb.n; }
std::int64_t HqNtPrep::sum_flops() const { return impl_->pb.sum_flops; }

std::vector<std::int32_t> hq_a_row_sums(const QuantizedMatrix& a) {
  HACK_CHECK(a.axis == QuantAxis::kRow, "A must be row-axis quantized");
  HACK_CHECK(a.storage_bits == 8, "A must use byte code storage");
  const PartitionScheme scheme(a.cols, a.pi, /*allow_ragged_tail=*/true);
  const std::size_t groups = scheme.group_count();
  HACK_CHECK(a.group_count() == groups, "A group count mismatch");
  std::vector<std::int32_t> sums(a.rows * groups, 0);
  for (std::size_t i = 0; i < a.rows; ++i) {
    const std::uint8_t* row = a.codes.data() + i * a.cols;
    for (std::size_t g = 0; g < groups; ++g) {
      std::int32_t acc = 0;
      for (std::size_t z = scheme.group_begin(g); z < scheme.group_end(g);
           ++z) {
        acc += row[z];
      }
      sums[i * groups + g] = acc;
    }
  }
  return sums;
}

void hq_nt_score_tile(const QuantizedMatrix& a, const HqNtPrep& prep,
                      std::span<const std::int32_t> a_sums, std::size_t r0,
                      std::size_t r1, std::size_t k_begin, std::size_t k_end,
                      float* out) {
  const PreparedB<true>& pb = prep.impl().pb;
  HACK_CHECK(k_begin <= k_end && k_end <= pb.n, "bad KV tile");
  HACK_CHECK(r0 <= r1 && r1 <= a.rows, "bad row band");
  HACK_CHECK(a_sums.size() == a.rows * pb.scheme.group_count(),
             "a_sums must be hq_a_row_sums(a)");
  const std::size_t tile = k_end - k_begin;
  std::fill(out, out + (r1 - r0) * tile, 0.0f);
  process_band<true>(a, pb, a_sums.data(), r0, r1, k_begin, k_end, out, tile);
}

KvTileBSums kv_tile_b_sums(const QuantizedMatrix& b, const SumCache* b_sums,
                           std::span<const KvSegment> segments) {
  HACK_CHECK(b.axis == QuantAxis::kCol, "B must be col-axis quantized");
  const std::size_t n = b.cols;
  KvTileBSums out;
  out.sums.assign(segments.size() * n, 0);
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const KvSegment& seg = segments[s];
    HACK_CHECK(seg.end <= b.rows && seg.begin < seg.end, "bad segment");
    std::int32_t* dst = out.sums.data() + s * n;
    if (seg.whole_group && b_sums != nullptr) {
      HACK_CHECK(b_sums->outer() == n && seg.group < b_sums->groups(),
                 "SumCache does not match B");
      for (std::size_t j = 0; j < n; ++j) dst[j] = b_sums->sum(j, seg.group);
    } else {
      std::vector<std::uint8_t> scratch;
      for (std::size_t z = seg.begin; z < seg.end; ++z) {
        const std::uint8_t* row = row_codes(b, z, scratch);
        for (std::size_t j = 0; j < n; ++j) dst[j] += row[j];
      }
      out.sum_flops += static_cast<std::int64_t>(seg.end - seg.begin) * n;
    }
  }
  return out;
}

void hq_nn_tile_accumulate(const std::uint8_t* a_codes, std::size_t a_rows,
                           std::span<const float> a_mins,
                           std::span<const float> a_scales,
                           std::span<const std::int32_t> a_code_sums,
                           const QuantizedMatrix& b,
                           std::span<const KvSegment> segments,
                           std::span<const std::int32_t> b_seg_sums,
                           std::size_t k_begin, std::size_t k_end,
                           float* out) {
  HACK_CHECK(b.axis == QuantAxis::kCol, "B must be col-axis quantized");
  HACK_CHECK(k_begin <= k_end && k_end <= b.rows, "bad KV tile");
  const std::size_t n = b.cols;
  const std::size_t tile = k_end - k_begin;
  const std::size_t seg_count = segments.size();
  HACK_CHECK(a_mins.size() == a_rows * seg_count &&
                 a_scales.size() == a_rows * seg_count &&
                 a_code_sums.size() == a_rows * seg_count,
             "A metadata must be laid out per segment");
  HACK_CHECK(b_seg_sums.size() == seg_count * n,
             "b_seg_sums must be kv_tile_b_sums of the segments");
  const std::size_t b_groups = b.group_count();
  const CodeView av{a_codes, a_rows, tile};
  const CodeView bv{b.codes.data(), b.rows, b.cols, b.storage_bits};

  std::vector<std::int32_t> dot(a_rows * n);
  std::vector<float> f1(n), f2(n), f3(n);
  for (std::size_t s = 0; s < seg_count; ++s) {
    const KvSegment& seg = segments[s];
    HACK_CHECK(seg.begin >= k_begin && seg.end <= k_end && seg.begin < seg.end,
               "segment outside the tile");
    HACK_CHECK(seg.group < b_groups, "segment group out of range");
    const std::size_t len = seg.end - seg.begin;

    const std::int32_t* bsum = b_seg_sums.data() + s * n;
    const auto flen = static_cast<float>(len);
    for (std::size_t j = 0; j < n; ++j) {
      const float sb = b.scales[j * b_groups + seg.group];
      const float mb = b.mins[j * b_groups + seg.group];
      f1[j] = sb;
      f2[j] = mb;
      f3[j] = sb * static_cast<float>(bsum[j]) + flen * mb;
    }

    std::fill(dot.begin(), dot.end(), 0);
    int_gemm_nn_rows(av, bv, 0, a_rows, seg.begin - k_begin,
                     seg.end - k_begin, dot.data(), b.bits,
                     /*b_row_offset=*/k_begin);
    for (std::size_t i = 0; i < a_rows; ++i) {
      const float sa = a_scales[i * seg_count + s];
      const float ma = a_mins[i * seg_count + s];
      // Fully masked rows quantize to (0, 0, codes 0): their Eq. (4)
      // contribution is exactly zero, skip the axpy.
      if (sa == 0.0f && ma == 0.0f) continue;
      const float a2 = sa * static_cast<float>(a_code_sums[i * seg_count + s]);
      float* crow = out + i * n;
      const std::int32_t* drow = dot.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += sa * f1[j] * static_cast<float>(drow[j]) + a2 * f2[j] +
                   ma * f3[j];
      }
    }
  }
}

Matrix hq_matmul(const QuantizedMatrix& a, const QuantizedMatrix& b,
                 const SumCache* b_sums, HqStats* stats, int threads) {
  return hq_matmul_single<false>(a, b, b_sums, stats, threads);
}

Matrix hq_matmul_nt(const QuantizedMatrix& a, const QuantizedMatrix& b,
                    const SumCache* b_sums, HqStats* stats, int threads) {
  return hq_matmul_single<true>(a, b, b_sums, stats, threads);
}

void hq_matmul_batched(std::span<HqGemmTask> tasks, int threads) {
  hq_matmul_batch<false>(tasks, threads);
}

void hq_matmul_nt_batched(std::span<HqGemmTask> tasks, int threads) {
  hq_matmul_batch<true>(tasks, threads);
}

}  // namespace hack
