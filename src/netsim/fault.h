// Deterministic fault injection for the netsim NIC/link model.
//
// Production disaggregation lives or dies on transfer faults: NCCL flakes,
// links brown out, packets corrupt in flight (the HACK paper's §6 transfer is
// exactly the component that fails at fleet scale; FlowKV treats KV-transfer
// failure handling as a first-class scheduling input). This module injects
// those faults *deterministically*: a seeded FaultModel draws one fate per
// chunk — drop, corrupt, latency spike — from its own Rng in a fixed draw
// order, plus scheduled link-down windows, so a chaos run with the same seed
// replays the identical fault schedule every time. Tests script exact fates
// per chunk ordinal on top of the probabilistic draws.
//
// The model also keeps a ledger of everything it injected (FaultStats); the
// disagg recovery layer's report counters are asserted against this ledger —
// "the report matches the injected schedule exactly" is the contract in
// tests/test_disagg_faults.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "base/rng.h"

namespace hack {

// During [start_s, end_s) the link carries nothing; chunks ready inside the
// window wait for it to close (a modeled switch reboot / cable flap).
struct LinkDownWindow {
  double start_s = 0.0;
  double end_s = 0.0;
};

struct FaultConfig {
  double chunk_drop_prob = 0.0;      // chunk vanishes in flight
  double chunk_corrupt_prob = 0.0;   // chunk arrives with flipped bits
  double latency_spike_prob = 0.0;   // chunk arrival delayed by spike_s
  double latency_spike_s = 0.0;
  std::vector<LinkDownWindow> down_windows;
  std::uint64_t seed = 0x5EED;
};

enum class ChunkFate {
  kDelivered,
  kDropped,
  kCorrupted,
};

// What the model actually injected — the ground truth the recovery layer's
// counters are verified against.
struct FaultStats {
  std::size_t chunks_seen = 0;
  std::size_t drops = 0;
  std::size_t corruptions = 0;
  std::size_t latency_spikes = 0;
  std::size_t down_delays = 0;  // chunks that waited out a down window
};

// One chunk's injected outcome. `corrupt_entropy` is a deterministic 64-bit
// draw the caller uses to pick which byte/bit to flip when fate is
// kCorrupted (the model does not see payload bytes; the transport does).
struct ChunkEvent {
  ChunkFate fate = ChunkFate::kDelivered;
  double spike_s = 0.0;
  std::uint64_t corrupt_entropy = 0;
};

// Derives the fault config for one link of a multi-link fleet from a shared
// base config: same probabilities and down windows, but the seed is mixed
// with the link id (splitmix64 finalizer) so every link draws an independent,
// replayable fate stream. Injecting extra faults on link A never shifts the
// chunk fates link B draws — the same decoupling rule the retry-jitter
// streams follow (docs/robustness.md).
FaultConfig fault_config_for_link(const FaultConfig& base,
                                  std::uint64_t link_id);

class FaultModel {
 public:
  explicit FaultModel(FaultConfig config = {});

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }
  std::size_t ordinal() const { return ordinal_; }

  // Scripts an exact fate for the chunk with the given lifetime ordinal
  // (0-based across every transfer this model sees). Scripted fates override
  // the probabilistic draw but consume the same Rng draws, so scripting one
  // chunk never shifts the fates of the others.
  void script_fate(std::size_t chunk_ordinal, ChunkFate fate);

  // Draws the next chunk's fate. Always consumes exactly three uniform draws
  // (drop, corrupt, spike) plus one entropy draw — outcome-independent draw
  // count keeps the stream aligned with any scripted overrides.
  ChunkEvent next_chunk();

  // Extra wait before a chunk ready at `t` may start sending: the remainder
  // of any down window containing t. Counted in stats() when positive.
  double down_delay(double t);

  bool active() const {
    return config_.chunk_drop_prob > 0.0 || config_.chunk_corrupt_prob > 0.0 ||
           config_.latency_spike_prob > 0.0 || !config_.down_windows.empty() ||
           !scripted_.empty();
  }

 private:
  FaultConfig config_;
  Rng rng_;
  std::size_t ordinal_ = 0;
  std::map<std::size_t, ChunkFate> scripted_;
  FaultStats stats_;
};

}  // namespace hack
