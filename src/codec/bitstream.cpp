#include "codec/bitstream.h"

namespace hack {

void BitWriter::write_bits(std::uint64_t value, int width) {
  HACK_CHECK(width >= 0 && width <= 57, "bit width out of range: " << width);
  if (width == 0) return;
  HACK_CHECK(width == 64 || value < (1ULL << width),
             "value does not fit in " << width << " bits");
  pending_ |= value << pending_bits_;
  pending_bits_ += width;
  bit_count_ += static_cast<std::size_t>(width);
  while (pending_bits_ >= 8) {
    bytes_.push_back(static_cast<std::uint8_t>(pending_ & 0xff));
    pending_ >>= 8;
    pending_bits_ -= 8;
  }
}

void BitWriter::write_unary(std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    write_bit(true);
  }
  write_bit(false);
}

void BitWriter::align_to_byte() {
  const int pad = (8 - pending_bits_ % 8) % 8;
  if (pad > 0) write_bits(0, pad);
}

void BitWriter::append_aligned_bytes(std::span<const std::uint8_t> bytes) {
  HACK_CHECK(pending_bits_ == 0, "append_aligned_bytes on unaligned stream");
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  bit_count_ += 8 * bytes.size();
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (pending_bits_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(pending_ & 0xff));
    pending_ = 0;
    pending_bits_ = 0;
  }
  return std::move(bytes_);
}

std::uint64_t BitReader::read_bits(int width) {
  HACK_CHECK(width >= 0 && width <= 57, "bit width out of range: " << width);
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    const std::size_t byte = bit_pos_ / 8;
    HACK_CHECK(byte < bytes_.size(), "bitstream exhausted");
    const int shift = static_cast<int>(bit_pos_ % 8);
    const std::uint64_t bit = (bytes_[byte] >> shift) & 1u;
    value |= bit << i;
    ++bit_pos_;
  }
  return value;
}

std::uint32_t BitReader::read_unary() {
  std::uint32_t count = 0;
  while (read_bit()) {
    ++count;
    HACK_CHECK(count < (1u << 24), "unary run too long; corrupt stream");
  }
  return count;
}

void BitReader::align_to_byte() {
  bit_pos_ = (bit_pos_ + 7) / 8 * 8;
}

std::span<const std::uint8_t> BitReader::view_aligned_bytes(std::size_t count) {
  HACK_CHECK(bit_pos_ % 8 == 0, "view_aligned_bytes on unaligned stream");
  const std::size_t byte = bit_pos_ / 8;
  HACK_CHECK(byte + count <= bytes_.size(), "bitstream exhausted");
  bit_pos_ += 8 * count;
  return bytes_.subspan(byte, count);
}

std::uint32_t zigzag_encode(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}

std::int32_t zigzag_decode(std::uint32_t v) {
  return static_cast<std::int32_t>(v >> 1) ^
         -static_cast<std::int32_t>(v & 1);
}

}  // namespace hack
