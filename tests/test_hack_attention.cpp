// Tests for the HACK attention kernels: prefill, decode, SE and RQE.
#include <gtest/gtest.h>

#include "attention/hack_attention.h"
#include "attention/reference.h"
#include "metrics/tensor_metrics.h"
#include "tensor/ops.h"

namespace hack {
namespace {

struct Inputs {
  Matrix q, k, v;
};

Inputs make_inputs(std::size_t l, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  return {Matrix::random_gaussian(l, d, rng), Matrix::random_gaussian(l, d, rng),
          Matrix::random_gaussian(l, d, rng)};
}

HackAttentionConfig config_pi(std::size_t pi) {
  HackAttentionConfig c;
  c.pi = pi;
  return c;
}

TEST(HackKvState, RejectsBadGeometry) {
  EXPECT_THROW(HackKvState(100, config_pi(64)), CheckError);  // Π ∤ d_head
  HackAttentionConfig bad_pi;
  bad_pi.pi = 24;
  EXPECT_THROW(HackKvState(96, bad_pi), CheckError);  // Π not multiple of 16
}

TEST(HackKvState, VTailPromotionAtPartitionBoundary) {
  HackKvState state(64, config_pi(32));
  Rng rng(1);
  const Inputs in = make_inputs(31, 64, 2);
  state.append_tokens(in.k, in.v, rng);
  EXPECT_EQ(state.tokens(), 31u);
  EXPECT_EQ(state.quantized_v_rows(), 0u);  // tail not yet full
  EXPECT_EQ(state.v_tail_fp16().rows(), 31u);

  const Inputs one = make_inputs(1, 64, 3);
  state.append_tokens(one.k, one.v, rng);
  EXPECT_EQ(state.quantized_v_rows(), 32u);  // promoted exactly at Π
  EXPECT_EQ(state.v_tail_fp16().rows(), 0u);
}

TEST(HackKvState, KGrowsByWholeTokens) {
  HackKvState state(64, config_pi(32));
  Rng rng(4);
  const Inputs in = make_inputs(5, 64, 5);
  state.append_tokens(in.k, in.v, rng);
  EXPECT_EQ(state.k().rows, 5u);
  EXPECT_EQ(state.k().group_count(), 2u);  // d_head 64 / Π 32
}

TEST(HackKvState, MemoryAccountingTracksGrowth) {
  HackKvState state(64, config_pi(32));
  Rng rng(6);
  const Inputs in = make_inputs(64, 64, 7);
  state.append_tokens(in.k, in.v, rng);
  EXPECT_GT(state.packed_kv_bytes(), 0u);
  EXPECT_GT(state.sum_cache_bytes(), 0u);
  EXPECT_EQ(state.fp16_tail_bytes(), 0u);  // 64 tokens = 2 whole partitions
  const std::size_t before = state.wire_bytes();
  const Inputs more = make_inputs(10, 64, 8);
  state.append_tokens(more.k, more.v, rng);
  EXPECT_GT(state.wire_bytes(), before);
  EXPECT_EQ(state.fp16_tail_bytes(), 10u * 64u * 2u);
}

TEST(HackKvState, CompressionNearSixBuckets) {
  // 2-bit codes + metadata: wire bytes should be ~17% of FP16 (§7.2 reports
  // KV compressed to ~15% of original size).
  HackKvState state(128, config_pi(64));
  Rng rng(9);
  const Inputs in = make_inputs(512, 128, 10);
  state.append_tokens(in.k, in.v, rng);
  const double fp16_bytes = 2.0 * 2.0 * 512.0 * 128.0;
  const double fraction = static_cast<double>(state.wire_bytes()) / fp16_bytes;
  EXPECT_GT(fraction, 0.13);
  EXPECT_LT(fraction, 0.20);
}

TEST(HackAttention, PrefillApproximatesReference) {
  const Inputs in = make_inputs(96, 64, 11);
  HackKvState state(64, config_pi(32));
  Rng rng(12);
  HackAttnStats stats{};
  const Matrix out = hack_attn_prefill(in.q, in.k, in.v, state, rng, &stats);
  const Matrix ref = attention_reference(in.q, in.k, in.v, {.causal = true});
  // I.i.d. Gaussian K/V is the worst case for 2-bit quantization (real KV
  // has channel structure); the output must still point the same way.
  EXPECT_LT(relative_l2(out, ref), 0.9);
  EXPECT_GT(cosine_similarity(out, ref), 0.75);
  EXPECT_GT(stats.int_macs, 0);
  EXPECT_GT(stats.approx_flops, 0);
}

TEST(HackAttention, EightBitKvIsNearExact) {
  // With 8-bit KV the only noise is metadata rounding: output ~= reference.
  const Inputs in = make_inputs(64, 64, 13);
  HackAttentionConfig cfg = config_pi(32);
  cfg.kv_bits = 8;
  HackKvState state(64, cfg);
  Rng rng(14);
  const Matrix out = hack_attn_prefill(in.q, in.k, in.v, state, rng);
  const Matrix ref = attention_reference(in.q, in.k, in.v, {.causal = true});
  EXPECT_LT(relative_l2(out, ref), 0.02);
}

TEST(HackAttention, DecodeMatchesPrefillPath) {
  // Feeding tokens one by one must produce the same cache geometry and a
  // consistent attention result for the final row.
  const std::size_t l = 40, d = 64;
  const Inputs in = make_inputs(l, d, 15);

  HackAttentionConfig cfg = config_pi(32);
  cfg.kv_bits = 8;  // keep quantization noise small for comparison
  cfg.rounding = Rounding::kNearest;

  HackKvState batch(d, cfg);
  Rng rng1(16);
  batch.append_tokens(in.k, in.v, rng1);

  HackKvState stepped(d, cfg);
  Rng rng2(16);
  for (std::size_t t = 0; t < l; ++t) {
    stepped.append_tokens(take_rows(in.k, t, t + 1), take_rows(in.v, t, t + 1),
                          rng2);
  }
  EXPECT_EQ(batch.tokens(), stepped.tokens());
  EXPECT_EQ(batch.quantized_v_rows(), stepped.quantized_v_rows());

  const Matrix q_last = take_rows(in.q, l - 1, l);
  Rng rng3(17), rng4(17);
  const Matrix o1 = hack_attention(
      q_last, batch, {.causal = true, .key_offset = l - 1}, rng3);
  const Matrix o2 = hack_attention(
      q_last, stepped, {.causal = true, .key_offset = l - 1}, rng4);
  // K codes are identical (per-token partitions, nearest rounding); V differs
  // only through promotion timing, which preserves values exactly.
  EXPECT_LT(relative_l2(o1, o2), 1e-5);
}

TEST(HackAttention, DecodeTracksReferenceOverSteps) {
  const std::size_t d = 64;
  const Inputs in = make_inputs(80, d, 18);
  HackAttentionConfig cfg = config_pi(32);
  cfg.kv_bits = 8;
  HackKvState state(d, cfg);
  Rng rng(19);

  Matrix k_seen, v_seen;
  for (std::size_t t = 0; t < 80; ++t) {
    const Matrix kt = take_rows(in.k, t, t + 1);
    const Matrix vt = take_rows(in.v, t, t + 1);
    const Matrix qt = take_rows(in.q, t, t + 1);
    k_seen = k_seen.empty() ? kt : vstack(k_seen, kt);
    v_seen = v_seen.empty() ? vt : vstack(v_seen, vt);
    const Matrix out = hack_attn_decode(qt, kt, vt, state, rng);
    const Matrix ref = attention_reference(
        qt, k_seen, v_seen, {.causal = true, .key_offset = t});
    EXPECT_LT(relative_l2(out, ref), 0.05) << "step " << t;
  }
}

TEST(HackAttention, SumCacheTogglesSumRecomputeCost) {
  const Inputs in = make_inputs(64, 64, 20);
  HackAttentionConfig with_se = config_pi(32);
  HackAttentionConfig no_se = with_se;
  no_se.summation_elimination = false;

  HackKvState s1(64, with_se), s2(64, no_se);
  Rng r1(21), r2(21);
  HackAttnStats st1{}, st2{};
  (void)hack_attn_prefill(in.q, in.k, in.v, s1, r1, &st1);
  (void)hack_attn_prefill(in.q, in.k, in.v, s2, r2, &st2);
  EXPECT_EQ(st1.sum_recompute_flops, 0);
  EXPECT_GT(st2.sum_recompute_flops, 0);
  EXPECT_EQ(s2.sum_cache_bytes(), 0u);
  EXPECT_GT(s1.sum_cache_bytes(), 0u);
}

TEST(HackAttention, RqeOffRequantizesAndAccumulatesEvents) {
  const std::size_t d = 64;
  HackAttentionConfig no_rqe = config_pi(32);
  no_rqe.requant_elimination = false;
  HackKvState state(d, no_rqe);
  Rng rng(22);
  HackAttnStats stats{};
  const Inputs in = make_inputs(40, d, 23);
  for (std::size_t t = 0; t < 40; ++t) {
    state.append_tokens(take_rows(in.k, t, t + 1), take_rows(in.v, t, t + 1),
                        rng, &stats);
  }
  // Every append after the first within a partition requantizes (Fig. 8).
  EXPECT_GT(stats.requant_events, 30);
  EXPECT_EQ(state.fp16_tail_bytes(), 0u);  // no FP16 tail when RQE is off
}

TEST(HackAttention, RqeOffStillApproximatesReference) {
  const Inputs in = make_inputs(48, 64, 24);
  HackAttentionConfig no_rqe = config_pi(32);
  no_rqe.requant_elimination = false;
  no_rqe.kv_bits = 8;
  HackKvState state(64, no_rqe);
  Rng rng(25);
  Matrix k_seen, v_seen;
  for (std::size_t t = 0; t < 48; ++t) {
    const Matrix kt = take_rows(in.k, t, t + 1);
    const Matrix vt = take_rows(in.v, t, t + 1);
    k_seen = k_seen.empty() ? kt : vstack(k_seen, kt);
    v_seen = v_seen.empty() ? vt : vstack(v_seen, vt);
    const Matrix qt = take_rows(in.q, t, t + 1);
    const Matrix out = hack_attn_decode(qt, kt, vt, state, rng);
    const Matrix ref = attention_reference(
        qt, k_seen, v_seen, {.causal = true, .key_offset = t});
    EXPECT_LT(relative_l2(out, ref), 0.10) << t;
  }
}

TEST(HackAttention, RqeOnBeatsRqeOffOnAccuracy) {
  // Requantization compounds reconstruction error (§5.3); with 2-bit V the
  // RQE-on path should track the reference at least as well on average.
  const std::size_t d = 64, steps = 64;
  const Inputs in = make_inputs(steps, d, 26);
  HackAttentionConfig on = config_pi(32);
  HackAttentionConfig off = on;
  off.requant_elimination = false;

  double err_on = 0.0, err_off = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    HackKvState s_on(d, on), s_off(d, off);
    Rng r_on(30 + trial), r_off(30 + trial);
    Matrix k_seen, v_seen;
    for (std::size_t t = 0; t < steps; ++t) {
      const Matrix kt = take_rows(in.k, t, t + 1);
      const Matrix vt = take_rows(in.v, t, t + 1);
      const Matrix qt = take_rows(in.q, t, t + 1);
      k_seen = k_seen.empty() ? kt : vstack(k_seen, kt);
      v_seen = v_seen.empty() ? vt : vstack(v_seen, vt);
      const Matrix ref = attention_reference(
          qt, k_seen, v_seen, {.causal = true, .key_offset = t});
      err_on += relative_l2(hack_attn_decode(qt, kt, vt, s_on, r_on), ref);
      err_off += relative_l2(hack_attn_decode(qt, kt, vt, s_off, r_off), ref);
    }
  }
  EXPECT_LT(err_on, err_off);
}

TEST(HackAttention, StatsCountFp16TailWork) {
  const Inputs in = make_inputs(40, 64, 27);  // 40 = 32 + 8-token tail
  HackKvState state(64, config_pi(32));
  Rng rng(28);
  HackAttnStats stats{};
  (void)hack_attn_prefill(in.q, in.k, in.v, state, rng, &stats);
  // Tail of 8 tokens at positions [32, 40): the streaming engine multiplies
  // only the causally visible slice, so row r (0-based) touches
  // min(r + 1, 40) - 32 tail tokens when r >= 32 — Σ_{r=32}^{39} (r - 31)
  // = 36 visible (row, token) pairs x 64 dims.
  EXPECT_EQ(stats.fp16_tail_macs, 36 * 64);
}

class HackAttentionPiSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HackAttentionPiSweep, PrefillTracksReference) {
  const std::size_t pi = GetParam();
  const std::size_t d = 128;
  const Inputs in = make_inputs(3 * pi + 7, d, 29);
  HackKvState state(d, config_pi(pi));
  Rng rng(30);
  const Matrix out = hack_attn_prefill(in.q, in.k, in.v, state, rng);
  const Matrix ref = attention_reference(in.q, in.k, in.v, {.causal = true});
  EXPECT_GT(cosine_similarity(out, ref), 0.65) << "pi=" << pi;
}

INSTANTIATE_TEST_SUITE_P(Pi, HackAttentionPiSweep,
                         ::testing::Values(32, 64, 128));

TEST(HackAttention, FinerPartitionsTrackReferenceBetter) {
  // Table 8's mechanism: Π=32 > Π=64 > Π=128 in fidelity.
  const std::size_t d = 128;
  const Inputs in = make_inputs(391, d, 31);
  const Matrix ref = attention_reference(in.q, in.k, in.v, {.causal = true});
  double cos_by_pi[3] = {};
  const std::size_t pis[3] = {32, 64, 128};
  for (int i = 0; i < 3; ++i) {
    HackKvState state(d, config_pi(pis[i]));
    Rng rng(32);
    cos_by_pi[i] =
        cosine_similarity(hack_attn_prefill(in.q, in.k, in.v, state, rng), ref);
  }
  EXPECT_GT(cos_by_pi[0], cos_by_pi[1]);
  EXPECT_GT(cos_by_pi[1], cos_by_pi[2]);
}

}  // namespace
}  // namespace hack
