// Figure 14: scalability — avg JCT as the prefill:decode replica ratio p
// grows. The decode side is one A100 replica (TP=4: half a p4de instance,
// 200 Gbps per §7.6); prefill replicas are A10G pairs; RPS grows with p.
// Paper shape: the baseline's JCT blows up with p (KV transfer and decode
// memory saturate), while CacheGen/KVQuant/HACK grow slowly.
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  const Method methods[] = {Method::kBaseline, Method::kCacheGen,
                            Method::kKvQuant, Method::kHack};
  Table t("Fig 14: avg JCT (s) vs p (prefill:decode replica ratio)");
  t.header({"p", "rps", "Baseline", "CacheGen", "KVQuant", "HACK"});
  double first[4] = {}, last[4] = {};
  for (int p = 1; p <= 8; ++p) {
    const double rps = 0.05 * p;
    std::vector<std::string> cells = {std::to_string(p), fmt(rps, 2)};
    for (int m = 0; m < 4; ++m) {
      ClusterConfig config =
          standard_cluster("A10G", "L", "Cocktail", methods[m], rps);
      config.prefill_replicas = p;
      config.decode_replicas = 1;  // one A100 model replica (TP=4)
      config.decode_nic_gbps = 200.0;
      const double jct = run(config).avg_jct_s;
      cells.push_back(fmt(jct, 1));
      if (p == 1) first[m] = jct;
      if (p == 8) last[m] = jct;
    }
    t.row(cells);
  }
  t.print();

  Table s("Fig 14 summary: JCT growth from p=1 to p=8");
  s.header({"method", "growth"});
  for (int m = 0; m < 4; ++m) {
    s.row({method_name(methods[m]), pct(last[m] / first[m] - 1.0)});
  }
  s.print();
  return 0;
}
