// Table 8: sensitivity to HACK's quantization partition size — the increase
// in accuracy and in average JCT for Π=32 and Π=64 relative to Π=128
// (Llama-3.1 70B, A10G prefill). Accuracy uses the tiny-transformer
// substrate (see bench_table6_accuracy); JCT uses the cluster simulator,
// where smaller Π costs metadata volume and tensor-core tile efficiency.
#include "accuracy_util.h"
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

namespace {

struct Scenario {
  std::string dataset;
  std::size_t prompt_len;
  std::size_t gen_len;
};

// Prompts are kept >= 2x the largest Π so every arm actually quantizes V;
// with a prompt shorter than Π, the Π=128 arm would hold V entirely in the
// RQE FP16 tail and win by not quantizing at all.
const Scenario kScenarios[] = {
    {"IMDb", 288, 16},
    {"arXiv", 320, 32},
    {"Cocktail", 384, 28},
    {"HumanEval", 272, 32},
};

// Teacher-forced logit fidelity vs the exact reference, averaged over runs
// (continuous metric; token flips are too coarse for sub-point deltas).
double accuracy_for_pi(const Scenario& sc, std::size_t pi) {
  SyntheticCorpus corpus({.vocab = 256}, 99);
  double fidelity = 0.0;
  constexpr int kRuns = 4;
  for (int run = 0; run < kRuns; ++run) {
    const TinyConfig cfg = accuracy_model_config(20 + run);
    const auto prompt =
        corpus.prompt(static_cast<std::size_t>(run), sc.prompt_len);
    const auto ref = reference_tokens(cfg, prompt, sc.gen_len);
    HackAttentionConfig hc;
    hc.pi = pi;
    // Deterministic rounding isolates the partition-size effect; stochastic
    // rounding noise between arms would otherwise swamp sub-point deltas.
    hc.rounding = Rounding::kNearest;
    fidelity +=
        logit_fidelity(cfg, make_hack_backend(hc, 900 + run), prompt, ref) /
        kRuns;
  }
  return fidelity;
}

}  // namespace

int main() {
  Table t("Table 8: Π=32 / Π=64 vs Π=128 (accuracy delta, JCT delta)");
  t.header({"dataset", "pi", "acc_delta", "jct_delta"});
  for (const Scenario& sc : kScenarios) {
    const double acc128 = accuracy_for_pi(sc, 128);
    ClusterConfig base128 =
        standard_cluster("A10G", "L", sc.dataset, Method::kHack);
    base128.pi = 128;
    const double jct128 = run(base128).avg_jct_s;
    for (const std::size_t pi : {32u, 64u}) {
      const double acc = accuracy_for_pi(sc, pi);
      ClusterConfig config =
          standard_cluster("A10G", "L", sc.dataset, Method::kHack);
      config.pi = pi;
      const double jct = run(config).avg_jct_s;
      t.row({sc.dataset, std::to_string(pi),
             fmt(100.0 * (acc - acc128), 2) + "pp",
             pct(jct / jct128 - 1.0)});
    }
  }
  t.print();
  return 0;
}
