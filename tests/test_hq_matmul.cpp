// Tests for the paper's core contribution: Eq. (4) homomorphic quantized
// matrix multiplication. The central property: hq_matmul(A', B') equals
// matmul(dequantize(A'), dequantize(B')) — computing on quantized operands
// plus the affine correction is exactly "dequantize then multiply", without
// ever materializing the dequantized matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.h"
#include "core/hq_matmul.h"
#include "metrics/tensor_metrics.h"
#include "tensor/ops.h"

namespace hack {
namespace {

struct Operands {
  QuantizedMatrix a;  // row-axis, M x Z
  QuantizedMatrix b_col;  // col-axis, Z x N
  QuantizedMatrix b_row;  // row-axis, N x Z (the NT/K layout of the same data)
  Matrix a_src, b_src;
};

Operands make_operands(std::size_t m, std::size_t z, std::size_t n,
                       std::size_t pi, int a_bits, int b_bits,
                       std::uint64_t seed, bool ragged = false) {
  Rng rng(seed);
  Operands ops;
  ops.a_src = Matrix::random_gaussian(m, z, rng);
  ops.b_src = Matrix::random_gaussian(z, n, rng);
  Rng q1(seed + 1), q2(seed + 2), q3(seed + 3);
  ops.a = quantize(ops.a_src, a_bits, pi, QuantAxis::kRow,
                   Rounding::kStochastic, q1, ragged);
  ops.b_col = quantize(ops.b_src, b_bits, pi, QuantAxis::kCol,
                       Rounding::kStochastic, q2, ragged);
  // NT layout: B^T stored row-major with row-axis partitioning gives the
  // same partitions over z per output column.
  ops.b_row = quantize(transpose(ops.b_src), b_bits, pi, QuantAxis::kRow,
                       Rounding::kStochastic, q3, ragged);
  return ops;
}

// Double-precision reference: matmul of the dequantized operands.
Matrix dequant_then_matmul(const QuantizedMatrix& a,
                           const QuantizedMatrix& b) {
  return matmul(dequantize(a), dequantize(b));
}

TEST(HqMatmul, EqualsDequantizeThenMultiply) {
  const Operands ops = make_operands(4, 64, 6, 32, 8, 2, 10);
  const Matrix hq = hq_matmul(ops.a, ops.b_col);
  const Matrix ref = dequant_then_matmul(ops.a, ops.b_col);
  // Identical arithmetic up to float reassociation.
  EXPECT_LT(relative_l2(hq, ref), 2e-5);
}

TEST(HqMatmul, NtEqualsDequantizeThenMultiply) {
  const Operands ops = make_operands(3, 128, 5, 64, 8, 2, 11);
  const Matrix hq = hq_matmul_nt(ops.a, ops.b_row);
  const Matrix ref = matmul_nt(dequantize(ops.a), dequantize(ops.b_row));
  EXPECT_LT(relative_l2(hq, ref), 2e-5);
}

TEST(HqMatmul, SumCacheChangesNothing) {
  const Operands ops = make_operands(2, 64, 9, 32, 8, 2, 12);
  const SumCache sums = SumCache::build(ops.b_col);
  HqStats with{}, without{};
  const Matrix c1 = hq_matmul(ops.a, ops.b_col, &sums, &with);
  const Matrix c2 = hq_matmul(ops.a, ops.b_col, nullptr, &without);
  EXPECT_EQ(max_abs_diff(c1, c2), 0.0f);  // bit-identical results
  EXPECT_EQ(with.sum_flops, 0);           // SE removed the NZ adds
  EXPECT_EQ(without.sum_flops,
            static_cast<std::int64_t>(ops.b_col.cols) *
                static_cast<std::int64_t>(ops.b_col.rows));
}

TEST(HqMatmul, ApproximatesTrueProduct) {
  // Against the *unquantized* product the error is governed by quantization
  // noise. I.i.d. Gaussian data is the worst case for 2-bit quantization
  // (real KV has per-channel structure), so assert a loose bound for 2-bit
  // and a tight one for 4-bit.
  const Operands ops2 = make_operands(8, 128, 16, 32, 8, 2, 13);
  const Matrix truth = matmul(ops2.a_src, ops2.b_src);
  EXPECT_LT(relative_l2(hq_matmul(ops2.a, ops2.b_col), truth), 0.8);

  const Operands ops4 = make_operands(8, 128, 16, 32, 8, 4, 13);
  const Matrix truth4 = matmul(ops4.a_src, ops4.b_src);
  EXPECT_LT(relative_l2(hq_matmul(ops4.a, ops4.b_col), truth4), 0.25);
}

TEST(HqMatmul, FinerPartitionsImproveAccuracy) {
  double errs[3] = {};
  const std::size_t pis[3] = {32, 64, 128};
  for (int i = 0; i < 3; ++i) {
    Rng rng(14);
    Matrix a_src = Matrix::random_gaussian(6, 128, rng);
    Matrix b_src = Matrix::random_gaussian(128, 6, rng);
    // Heavy tails make the partition-size effect visible.
    for (std::size_t k = 0; k < b_src.size(); k += 13) b_src.flat()[k] *= 5.0f;
    Rng q1(15), q2(16);
    const QuantizedMatrix a = quantize(a_src, 8, pis[i], QuantAxis::kRow,
                                       Rounding::kStochastic, q1);
    const QuantizedMatrix b = quantize(b_src, 2, pis[i], QuantAxis::kCol,
                                       Rounding::kStochastic, q2);
    errs[i] = relative_l2(hq_matmul(a, b), matmul(a_src, b_src));
  }
  EXPECT_LT(errs[0], errs[1]);
  EXPECT_LT(errs[1], errs[2]);
}

TEST(HqMatmul, ExactForValuesOnQuantizationGrid) {
  // If every partition holds values already on its quantization grid the
  // whole pipeline is exact (up to FP16 metadata rounding of min/scale).
  Matrix a(2, 32), b(32, 3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.flat()[i] = static_cast<float>(i % 4);  // exactly 2-bit representable
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.flat()[i] = static_cast<float>((i * 7) % 4);
  }
  Rng q1(17), q2(18);
  const QuantizedMatrix qa =
      quantize(a, 2, 32, QuantAxis::kRow, Rounding::kNearest, q1);
  const QuantizedMatrix qb =
      quantize(b, 2, 32, QuantAxis::kCol, Rounding::kNearest, q2);
  const Matrix c = hq_matmul(qa, qb);
  const Matrix truth = matmul(a, b);
  EXPECT_LT(max_abs_diff(c, truth), 0.15f);  // FP16 scale rounding only
}

TEST(HqMatmul, StatsMatchClosedFormCosts) {
  const std::size_t m = 3, z = 128, n = 7;
  const Operands ops = make_operands(m, z, n, 64, 8, 2, 19);
  HqStats stats{};
  (void)hq_matmul(ops.a, ops.b_col, nullptr, &stats);
  EXPECT_EQ(stats.int_macs, hq_gemm_macs(m, z, n));
  EXPECT_EQ(stats.approx_flops + stats.sum_flops, hq_approx_flops(m, z, n));
  HqStats se{};
  const SumCache sums = SumCache::build(ops.b_col);
  (void)hq_matmul(ops.a, ops.b_col, &sums, &se);
  EXPECT_EQ(se.approx_flops, hq_approx_flops_se(m, z, n));
}

TEST(HqMatmul, DecodeShapeSingleRow) {
  // Decode: M = 1 query row against a long K/V (the §5.3 fast path).
  const Operands ops = make_operands(1, 64, 200, 64, 8, 2, 20);
  const Matrix hq = hq_matmul_nt(ops.a, ops.b_row);
  const Matrix ref = matmul_nt(dequantize(ops.a), dequantize(ops.b_row));
  EXPECT_LT(relative_l2(hq, ref), 2e-5);
}

TEST(HqMatmul, RaggedTailGroups) {
  // Inner dim not divisible by Π (the P·V tail case when RQE is off).
  const Operands ops = make_operands(2, 100, 4, 32, 8, 2, 21, /*ragged=*/true);
  const Matrix hq = hq_matmul(ops.a, ops.b_col);
  const Matrix ref = dequant_then_matmul(ops.a, ops.b_col);
  EXPECT_LT(relative_l2(hq, ref), 2e-5);
}

TEST(HqMatmul, MismatchedPartitionsThrow) {
  const Operands ops = make_operands(2, 64, 3, 32, 8, 2, 22);
  Rng q(23);
  const QuantizedMatrix b64 = quantize(ops.b_src, 2, 64, QuantAxis::kCol,
                                       Rounding::kStochastic, q);
  EXPECT_THROW(hq_matmul(ops.a, b64), CheckError);
}

TEST(HqMatmul, WrongAxisThrows) {
  const Operands ops = make_operands(2, 64, 3, 32, 8, 2, 24);
  EXPECT_THROW(hq_matmul(ops.a, ops.a), CheckError);      // B not col-axis
  EXPECT_THROW(hq_matmul_nt(ops.a, ops.b_col), CheckError);  // B not row-axis
}

TEST(HqMatmul, MismatchedSumCacheThrows) {
  const Operands ops = make_operands(2, 64, 3, 32, 8, 2, 25);
  const SumCache wrong = SumCache::build(ops.a);
  EXPECT_THROW(hq_matmul(ops.a, ops.b_col, &wrong), CheckError);
}

TEST(HqMatmul, KvTileSegmentsGeometry) {
  // 70 rows, Π = 32: groups [0,32) [32,64) [64,70) — the RQE-off spliced
  // store shape. A tile cutting through groups yields partial segments.
  const auto segs = kv_tile_segments(10, 70, 70, 32);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].begin, 10u);
  EXPECT_EQ(segs[0].end, 32u);
  EXPECT_EQ(segs[0].group, 0u);
  EXPECT_FALSE(segs[0].whole_group);
  EXPECT_EQ(segs[1].begin, 32u);
  EXPECT_EQ(segs[1].end, 64u);
  EXPECT_TRUE(segs[1].whole_group);
  EXPECT_EQ(segs[2].begin, 64u);
  EXPECT_EQ(segs[2].end, 70u);
  EXPECT_EQ(segs[2].group, 2u);
  EXPECT_TRUE(segs[2].whole_group);  // the ragged final group, covered whole

  EXPECT_TRUE(kv_tile_segments(32, 32, 70, 32).empty());
  const auto one = kv_tile_segments(33, 34, 70, 32);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_FALSE(one[0].whole_group);
  EXPECT_EQ(one[0].group, 1u);
}

TEST(HqMatmul, NtBatchedKvTileMatchesFullColumnsExactly) {
  // The NT tile view restricts output columns; per-column arithmetic is
  // unchanged, so the tile must be bit-identical to the full result's slice.
  const Operands ops = make_operands(8, 64, 33, 32, 8, 2, 40);
  const SumCache sums = SumCache::build(ops.b_row);
  Matrix full;
  HqGemmTask full_task{&ops.a, &ops.b_row, &sums, &full, nullptr};
  hq_matmul_nt_batched({&full_task, 1});

  for (const auto [k0, k1] : {std::pair<std::size_t, std::size_t>{0, 33},
                              {5, 20},
                              {32, 33},
                              {0, 1}}) {
    Matrix tile;
    HqStats stats{};
    HqGemmTask task{&ops.a, &ops.b_row, &sums, &tile, &stats, k0, k1};
    hq_matmul_nt_batched({&task, 1});
    ASSERT_EQ(tile.rows(), ops.a.rows);
    ASSERT_EQ(tile.cols(), k1 - k0);
    for (std::size_t i = 0; i < tile.rows(); ++i) {
      for (std::size_t j = k0; j < k1; ++j) {
        ASSERT_EQ(tile(i, j - k0), full(i, j)) << k0 << " " << k1;
      }
    }
    EXPECT_EQ(stats.int_macs,
              static_cast<std::int64_t>(ops.a.rows) * (k1 - k0) * 64);
  }
}

// Builds the segment-quantized A block the NN tile contract requires: each
// kv_tile_segment of the float source quantized as its own (possibly ragged)
// group, metadata [row x segments] — what the streaming engine produces for
// a softmax tile.
QuantizedMatrix quantize_per_segment(const Matrix& a_tile,
                                     std::span<const KvSegment> segs,
                                     std::size_t k0, std::size_t pi, int bits,
                                     Rng& rng) {
  QuantizedMatrix q;
  q.rows = a_tile.rows();
  q.cols = a_tile.cols();
  q.bits = bits;
  q.axis = QuantAxis::kRow;
  q.pi = pi;
  q.groups = segs.size();
  q.codes.assign(q.rows * q.cols, 0);
  q.mins.assign(q.rows * segs.size(), 0.0f);
  q.scales.assign(q.rows * segs.size(), 0.0f);
  std::vector<float> vals;
  std::vector<std::uint8_t> codes;
  for (std::size_t i = 0; i < q.rows; ++i) {
    for (std::size_t s = 0; s < segs.size(); ++s) {
      const std::size_t len = segs[s].end - segs[s].begin;
      vals.resize(len);
      codes.resize(len);
      for (std::size_t z = 0; z < len; ++z) {
        vals[z] = a_tile(i, segs[s].begin - k0 + z);
      }
      quantize_span(vals, codes, bits, Rounding::kStochastic, rng,
                    q.mins[i * segs.size() + s], q.scales[i * segs.size() + s]);
      std::copy(codes.begin(), codes.end(),
                q.codes.begin() + i * q.cols + (segs[s].begin - k0));
    }
  }
  return q;
}

TEST(HqMatmul, NnBatchedKvTileMatchesDequantReference) {
  // Ragged-tail V store (70 rows, Π=32) contracted over tiles that cut
  // through groups: Eq. (4) per segment must equal dequantize-then-multiply
  // of the tile slice, with and without a SumCache serving the whole-group
  // segments.
  Rng rng(77);
  const std::size_t z = 70, n = 9, m = 6, pi = 32;
  const Matrix b_src = Matrix::random_gaussian(z, n, rng);
  Rng bq(78);
  const QuantizedMatrix b = quantize(b_src, 2, pi, QuantAxis::kCol,
                                     Rounding::kStochastic, bq,
                                     /*allow_ragged_tail=*/true);
  const SumCache sums = SumCache::build(b);
  const Matrix b_deq = dequantize(b);

  for (const auto [k0, k1] : {std::pair<std::size_t, std::size_t>{0, 70},
                              {10, 55},
                              {32, 64},
                              {63, 70}}) {
    const auto segs = kv_tile_segments(k0, k1, z, pi);
    const Matrix a_src =
        Matrix::random_gaussian(m, k1 - k0, rng);  // softmax-tile stand-in
    Rng aq(100 + k0);
    const QuantizedMatrix a =
        quantize_per_segment(a_src, segs, k0, pi, 8, aq);

    for (const SumCache* cache : {static_cast<const SumCache*>(nullptr),
                                  &sums}) {
      Matrix c;
      HqStats stats{};
      HqGemmTask task{&a, &b, cache, &c, &stats, k0, k1};
      hq_matmul_batched({&task, 1});
      ASSERT_EQ(c.rows(), m);
      ASSERT_EQ(c.cols(), n);

      // Dequantize A through the segment metadata and multiply the slice.
      Matrix expected(m, n, 0.0f);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t s = 0; s < segs.size(); ++s) {
          for (std::size_t zz = segs[s].begin; zz < segs[s].end; ++zz) {
            const float av =
                a.scales[i * segs.size() + s] *
                    static_cast<float>(a.codes[i * a.cols + (zz - k0)]) +
                a.mins[i * segs.size() + s];
            for (std::size_t j = 0; j < n; ++j) {
              expected(i, j) += av * b_deq(zz, j);
            }
          }
        }
      }
      EXPECT_LT(relative_l2(c, expected), 2e-4)
          << "k0=" << k0 << " k1=" << k1 << " cache=" << (cache != nullptr);
      // With a SumCache only boundary-cut segments pay Σ b' adds.
      std::int64_t partial_adds = 0;
      for (const KvSegment& s : segs) {
        if (!s.whole_group || cache == nullptr) {
          partial_adds += static_cast<std::int64_t>(s.end - s.begin) * n;
        }
      }
      EXPECT_EQ(stats.sum_flops, partial_adds);
    }
  }
}

struct HqCase {
  std::size_t m, z, n, pi;
  int a_bits, b_bits;
};

class HqMatmulSweep : public ::testing::TestWithParam<HqCase> {};

TEST_P(HqMatmulSweep, MatchesDequantReferenceAcrossShapes) {
  const auto p = GetParam();
  const Operands ops =
      make_operands(p.m, p.z, p.n, p.pi, p.a_bits, p.b_bits, 1000 + p.z);
  const Matrix hq = hq_matmul(ops.a, ops.b_col);
  const Matrix ref = dequant_then_matmul(ops.a, ops.b_col);
  EXPECT_LT(relative_l2(hq, ref), 2e-4) << "m=" << p.m << " z=" << p.z;

  const Matrix hq_nt = hq_matmul_nt(ops.a, ops.b_row);
  const Matrix ref_nt = matmul_nt(dequantize(ops.a), dequantize(ops.b_row));
  EXPECT_LT(relative_l2(hq_nt, ref_nt), 2e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HqMatmulSweep,
    ::testing::Values(HqCase{1, 64, 1, 64, 8, 2}, HqCase{1, 128, 64, 64, 8, 2},
                      HqCase{16, 64, 16, 16, 8, 2},
                      HqCase{8, 256, 4, 128, 8, 2}, HqCase{2, 32, 2, 32, 2, 2},
                      HqCase{5, 96, 7, 32, 4, 4}, HqCase{3, 64, 3, 64, 8, 8},
                      HqCase{1, 512, 2, 64, 8, 2}));

}  // namespace
}  // namespace hack
