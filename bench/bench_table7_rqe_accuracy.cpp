// Table 7: the accuracy cost of disabling requantization elimination.
// HACK/RQE requantizes the last block of V from its own dequantized codes
// every time the range widens (Fig. 8), compounding reconstruction error
// through the decode phase; the paper measures a 0.14-0.29% accuracy drop,
// smallest on IMDb whose short outputs accumulate the least error.
#include "accuracy_util.h"
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

namespace {

struct Cell {
  std::string dataset;
  std::size_t prompt_len;
  std::size_t gen_len;  // Table 7's driver: error accumulates during decode
};

const Cell kCells[] = {
    {"IMDb", 96, 12},  // short outputs -> least accumulation
    {"arXiv", 256, 40},
    {"Cocktail", 384, 36},
    {"HumanEval", 80, 40},
};

}  // namespace

int main() {
  Table t("Table 7: logit fidelity, HACK vs HACK/RQE (avg of 4 runs)");
  t.header({"dataset", "HACK", "HACK/RQE", "decrease"});
  for (const Cell& cell : kCells) {
    double with_rqe = 0.0, without_rqe = 0.0;
    constexpr int kRuns = 4;
    SyntheticCorpus corpus({.vocab = 256}, 777);
    for (int run = 0; run < kRuns; ++run) {
      const TinyConfig cfg = accuracy_model_config(10 + run);
      const auto prompt =
          corpus.prompt(static_cast<std::size_t>(run), cell.prompt_len);
      const auto ref = reference_tokens(cfg, prompt, cell.gen_len);

      HackAttentionConfig on;
      on.pi = 64;
      // Deterministic rounding: both arms quantize identically except for
      // the last-block-of-V requantization under test.
      on.rounding = Rounding::kNearest;
      HackAttentionConfig off = on;
      off.requant_elimination = false;
      with_rqe +=
          logit_fidelity(cfg, make_hack_backend(on, 500 + run), prompt, ref) /
          kRuns;
      without_rqe += logit_fidelity(cfg, make_hack_backend(off, 500 + run),
                                    prompt, ref) /
                     kRuns;
    }
    t.row({cell.dataset, pct(with_rqe), pct(without_rqe),
           fmt(100.0 * (with_rqe - without_rqe), 2) + "pp"});
  }
  t.print();
  return 0;
}
