#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"
#include "quant/minifloat.h"

namespace hack {
namespace {

TEST(MiniFloat, BitWidths) {
  EXPECT_EQ(minifloat_bits(MiniFloatFormat::kFp8E4M3), 8);
  EXPECT_EQ(minifloat_bits(MiniFloatFormat::kFp6E3M2), 6);
  EXPECT_EQ(minifloat_bits(MiniFloatFormat::kFp4E2M1), 4);
}

TEST(MiniFloat, CompressionVsFp16) {
  EXPECT_DOUBLE_EQ(minifloat_compression_vs_fp16(MiniFloatFormat::kFp8E4M3),
                   0.5);
  EXPECT_DOUBLE_EQ(minifloat_compression_vs_fp16(MiniFloatFormat::kFp6E3M2),
                   0.625);
  EXPECT_DOUBLE_EQ(minifloat_compression_vs_fp16(MiniFloatFormat::kFp4E2M1),
                   0.75);
}

TEST(MiniFloat, ZeroAndSign) {
  for (const auto format :
       {MiniFloatFormat::kFp8E4M3, MiniFloatFormat::kFp6E3M2,
        MiniFloatFormat::kFp4E2M1}) {
    EXPECT_EQ(minifloat_round(0.0f, format), 0.0f);
    EXPECT_EQ(minifloat_round(-1.0f, format), -1.0f);
    EXPECT_EQ(minifloat_round(1.0f, format), 1.0f);
  }
}

TEST(MiniFloat, Fp4ExactValues) {
  // E2M1, bias 1: representable positives are
  // subnormal 0.5; normals 1, 1.5, 2, 3, 4, 6.
  const auto f = MiniFloatFormat::kFp4E2M1;
  for (const float v : {0.5f, 1.0f, 1.5f, 2.0f, 3.0f, 4.0f, 6.0f}) {
    EXPECT_EQ(minifloat_round(v, f), v) << v;
    EXPECT_EQ(minifloat_round(-v, f), -v) << -v;
  }
}

TEST(MiniFloat, Fp4SaturatesAtSix) {
  const auto f = MiniFloatFormat::kFp4E2M1;
  EXPECT_EQ(minifloat_round(100.0f, f), 6.0f);
  EXPECT_EQ(minifloat_round(-100.0f, f), -6.0f);
}

TEST(MiniFloat, Fp8E4M3MaxFinite) {
  // E4M3 with saturating all-ones exponent: max = 1.875 * 2^8 = 480.
  const auto f = MiniFloatFormat::kFp8E4M3;
  EXPECT_EQ(minifloat_round(1000.0f, f), 480.0f);
  EXPECT_EQ(minifloat_round(480.0f, f), 480.0f);
}

TEST(MiniFloat, RoundingIsIdempotent) {
  Rng rng(44);
  for (const auto format :
       {MiniFloatFormat::kFp8E4M3, MiniFloatFormat::kFp6E3M2,
        MiniFloatFormat::kFp4E2M1}) {
    for (int i = 0; i < 5000; ++i) {
      const float v = (rng.next_float() - 0.5f) * 20.0f;
      const float once = minifloat_round(v, format);
      EXPECT_EQ(minifloat_round(once, format), once);
    }
  }
}

TEST(MiniFloat, EncodeFitsBitWidth) {
  Rng rng(45);
  for (const auto format :
       {MiniFloatFormat::kFp8E4M3, MiniFloatFormat::kFp6E3M2,
        MiniFloatFormat::kFp4E2M1}) {
    const int bits = minifloat_bits(format);
    for (int i = 0; i < 5000; ++i) {
      const float v = (rng.next_float() - 0.5f) * 1000.0f;
      EXPECT_LT(minifloat_encode(v, format), 1u << bits);
    }
  }
}

TEST(MiniFloat, MorePrecisionLessError) {
  Rng rng(46);
  double err[3] = {0, 0, 0};
  const MiniFloatFormat formats[3] = {MiniFloatFormat::kFp8E4M3,
                                      MiniFloatFormat::kFp6E3M2,
                                      MiniFloatFormat::kFp4E2M1};
  for (int i = 0; i < 20000; ++i) {
    const float v = (rng.next_float() - 0.5f) * 4.0f;
    for (int fidx = 0; fidx < 3; ++fidx) {
      err[fidx] += std::fabs(minifloat_round(v, formats[fidx]) - v);
    }
  }
  EXPECT_LT(err[0], err[1]);
  EXPECT_LT(err[1], err[2]);
}

TEST(MiniFloat, RelativeErrorBoundForNormals) {
  // For values within normal range, relative error <= 2^-(mantissa bits + 1).
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) {
    const float v = 1.0f + rng.next_float() * 200.0f;  // FP8 normal range
    const float r = minifloat_round(v, MiniFloatFormat::kFp8E4M3);
    if (r < 480.0f) {  // skip the saturation zone
      EXPECT_LE(std::fabs(r - v) / v, 1.0f / 16.0f + 1e-6f) << v;
    }
  }
}

TEST(MiniFloat, MatrixRounding) {
  Rng rng(48);
  const Matrix m = Matrix::random_gaussian(4, 8, rng);
  const Matrix r = minifloat_round_matrix(m, MiniFloatFormat::kFp6E3M2);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(r.flat()[i],
              minifloat_round(m.flat()[i], MiniFloatFormat::kFp6E3M2));
  }
}

TEST(MiniFloat, NamesForReporting) {
  EXPECT_EQ(minifloat_name(MiniFloatFormat::kFp8E4M3), "FP8");
  EXPECT_EQ(minifloat_name(MiniFloatFormat::kFp6E3M2), "FP6");
  EXPECT_EQ(minifloat_name(MiniFloatFormat::kFp4E2M1), "FP4");
}

}  // namespace
}  // namespace hack
