// Deterministic random number generation.
//
// Every stochastic component in the library (stochastic rounding, workload
// sampling, Poisson arrivals, synthetic weights) draws from an explicitly
// seeded Rng so that experiments, tests, and benchmarks are reproducible
// bit-for-bit across runs. The generator is xoshiro256**, seeded through
// splitmix64 per the reference recommendation.
#pragma once

#include <array>
#include <cstdint>

namespace hack {

// xoshiro256** PRNG. Cheap, high quality, and deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double next_double();

  // Uniform float in [0, 1).
  float next_float();

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Standard normal via Box–Muller (no cached second value; keeps state flat).
  double next_gaussian();

  // Exponential with the given rate (for Poisson inter-arrival times).
  double next_exponential(double rate);

  // Creates an independent generator; streams do not overlap in practice
  // because the child is seeded from a full 64-bit draw.
  Rng fork();

  // Raw xoshiro256** state words. The KV wire format (kvcache/kv_wire.h)
  // ships these so a rehydrated decode instance resumes every stochastic
  // stream exactly where the prefill instance left it.
  std::array<std::uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> state_;
};

// Stochastic rounding of x to one of {floor(x), ceil(x)}: rounds down with
// probability (ceil(x) - x), up otherwise; integers are returned unchanged.
// This is the rounding rule of the paper's asymmetric stochastic quantizer.
std::int64_t stochastic_round(double x, Rng& rng);

// Round-to-nearest-even companion used where determinism without an Rng is
// preferred (e.g. codec baselines).
std::int64_t nearest_round(double x);

}  // namespace hack
