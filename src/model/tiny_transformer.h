// A real, runnable decoder-only transformer with pluggable KV backends.
//
// The paper's accuracy experiments (Table 6, Table 7, Table 8) measure how
// each KV-compression scheme perturbs generation. The mechanism is entirely
// inside attention — quantization error in K/V (and in HACK's case Q/P)
// shifts attention outputs, which shift logits, which eventually flip
// generated tokens. This module reproduces that mechanism end-to-end with a
// small but complete model: token embeddings, RMSNorm, RoPE, grouped-query
// attention routed through a pluggable per-head KV backend, SwiGLU MLP, tied
// LM head, greedy decoding. Weights are deterministic functions of a seed.
//
// Backends:
//   - exact FP32 (reference / "ground truth" generation)
//   - FP16 cache (the disaggregation baseline)
//   - HACK (homomorphic quantized attention, any HackAttentionConfig)
//   - codec (CacheGen/KVQuant: compress on append, dequantize to attend)
//   - mini-float (FP4/6/8 storage)
//
// TinyTransformer is a convenience wrapper over the shared-weights model in
// model/session.h: one TinyModelWeights (possibly shared with other
// instances) plus one TinyModelSession, with the classic whole-model
// prefill / decode_step / generate API. Serving-scale code (the continuous
// batching engine in serving/engine.h) uses the session API directly so N
// concurrent requests share a single weight instance.
#pragma once

#include <memory>
#include <vector>

#include "model/session.h"

namespace hack {

class TinyTransformer {
 public:
  TinyTransformer(const TinyConfig& config, LayerBackendFactory factory);
  // Per-head compatibility constructor: wraps `factory` in
  // per_head_layer_factory.
  TinyTransformer(const TinyConfig& config, BackendFactory factory);
  // Shared-weights constructor: N instances built from the same weights
  // pointer hold no per-instance parameter copies.
  TinyTransformer(std::shared_ptr<const TinyModelWeights> weights,
                  LayerBackendFactory factory);

  const TinyConfig& config() const { return session_.config(); }
  std::size_t tokens_processed() const { return session_.position(); }

  TinyModelSession& session() { return session_; }
  const TinyModelSession& session() const { return session_; }

  // Processes the prompt and returns the logits row for its last token.
  std::vector<float> prefill(const std::vector<int>& prompt);

  // Processes one token and returns the next logits row.
  std::vector<float> decode_step(int token);

  // Greedy generation: prefill + argmax decode loop. Returns generated
  // tokens (prompt excluded). Stops at max_new_tokens or eos (if >= 0).
  std::vector<int> generate(const std::vector<int>& prompt,
                            std::size_t max_new_tokens, int eos = -1);

  // Total stored KV bytes across all heads/layers.
  std::size_t kv_stored_bytes() const { return session_.kv_stored_bytes(); }

 private:
  // Runs `tokens` rows through the stack; returns final hidden states.
  Matrix forward(const std::vector<int>& tokens);

  TinyModelSession session_;
};

}  // namespace hack
