#include "codec/cachegen.h"

#include "base/thread_pool.h"
#include "codec/rice.h"
#include "quant/quantizer.h"
#include "tensor/half.h"

namespace hack {
namespace {

// Blob layout:
//   u32 rows, u32 cols, u8 bits, u8 pi/16, u8 rice_k
//   per (row, group): u16 min_fp16, u16 scale_fp16
//   rice-coded zigzag deltas, channel-major (delta across tokens per channel)
constexpr std::uint32_t kMagic = 0x4347u;  // "CG"

// Each channel's delta chain is independent of every other channel's, so the
// symbol-building (encode) and code-reconstruction (decode) loops run
// channel-parallel on the shared pool for prefill-sized chunks — the same
// outer-slice recipe as quantize()/dequantize(), with the same threshold.
// Output slots are disjoint per channel, so scheduling cannot change the
// blob or the reconstruction.
void for_each_channel(std::size_t cols, std::size_t values,
                      const std::function<void(std::size_t)>& fn) {
  if (cols < 2 || values < kParallelQuantizeMinValues) {
    for (std::size_t c = 0; c < cols; ++c) fn(c);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  pool.parallel_for(cols, pool.lanes(),
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t c = begin; c < end; ++c) fn(c);
                    });
}

}  // namespace

std::vector<std::uint8_t> CacheGenCodec::encode(const Matrix& chunk,
                                                KvKind /*kind*/,
                                                Rng& rng) const {
  // Token-axis quantization: each token row partitions along d_head, like the
  // reference CacheGen groups channels.
  const QuantizedMatrix q = quantize(chunk, bits_, pi_, QuantAxis::kRow,
                                     Rounding::kStochastic, rng,
                                     /*allow_ragged_tail=*/true);

  // Delta across tokens per channel: code[t][c] - code[t-1][c]. Channel
  // slots are disjoint (channel-major layout), so the chains build in
  // parallel.
  std::vector<std::uint32_t> symbols(q.codes.size());
  for_each_channel(q.cols, q.codes.size(), [&](std::size_t c) {
    std::int32_t prev = 0;
    std::uint32_t* dst = symbols.data() + c * q.rows;
    for (std::size_t t = 0; t < q.rows; ++t) {
      const std::int32_t code = q.code_at(t, c);
      dst[t] = zigzag_encode(code - prev);
      prev = code;
    }
  });
  const int k = rice_best_k(symbols);

  BitWriter w;
  w.write_bits(kMagic, 16);
  w.write_bits(q.rows, 32);
  w.write_bits(q.cols, 32);
  w.write_bits(static_cast<std::uint64_t>(bits_), 8);
  w.write_bits(pi_ / 16, 8);
  w.write_bits(static_cast<std::uint64_t>(k), 8);
  for (std::size_t i = 0; i < q.mins.size(); ++i) {
    w.write_bits(Half(q.mins[i]).bits(), 16);
    w.write_bits(Half(q.scales[i]).bits(), 16);
  }
  for (const std::uint32_t s : symbols) {
    rice_encode(w, s, k);
  }
  return w.finish();
}

Matrix CacheGenCodec::decode(std::span<const std::uint8_t> blob) const {
  BitReader r(blob);
  HACK_CHECK(r.read_bits(16) == kMagic, "not a CacheGen blob");
  QuantizedMatrix q;
  q.rows = static_cast<std::size_t>(r.read_bits(32));
  q.cols = static_cast<std::size_t>(r.read_bits(32));
  q.bits = static_cast<int>(r.read_bits(8));
  q.pi = static_cast<std::size_t>(r.read_bits(8)) * 16;
  const int k = static_cast<int>(r.read_bits(8));
  q.axis = QuantAxis::kRow;

  const PartitionScheme scheme(q.cols, q.pi, /*allow_ragged_tail=*/true);
  const std::size_t groups = scheme.group_count();
  q.mins.resize(q.rows * groups);
  q.scales.resize(q.rows * groups);
  q.groups = groups;
  for (std::size_t i = 0; i < q.mins.size(); ++i) {
    q.mins[i] = Half::from_bits(static_cast<std::uint16_t>(r.read_bits(16)))
                    .to_float();
    q.scales[i] = Half::from_bits(static_cast<std::uint16_t>(r.read_bits(16)))
                      .to_float();
  }
  // The Rice stream is inherently serial (variable-length symbols), so drain
  // it into the channel-major delta buffer first; the per-channel prefix
  // reconstruction then runs channel-parallel, and dequantize() already
  // row-parallelizes.
  std::vector<std::uint32_t> symbols(q.rows * q.cols);
  for (std::uint32_t& s : symbols) s = rice_decode(r, k);
  q.codes.resize(q.rows * q.cols);
  for_each_channel(q.cols, q.codes.size(), [&](std::size_t c) {
    std::int32_t prev = 0;
    const std::uint32_t* src = symbols.data() + c * q.rows;
    for (std::size_t t = 0; t < q.rows; ++t) {
      const std::int32_t code = prev + zigzag_decode(src[t]);
      HACK_CHECK(code >= 0 && code < (1 << q.bits), "corrupt CacheGen stream");
      q.codes[t * q.cols + c] = static_cast<std::uint8_t>(code);
      prev = code;
    }
  });
  return dequantize(q);
}

}  // namespace hack
